let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number v =
  (* OpenMetrics spells non-finite values "+Inf" / "-Inf" / "NaN";
     Printf would render them "inf" / "nan", which parsers reject. *)
  if Float.is_nan v then "NaN"
  else if not (Float.is_finite v) then if v > 0. then "+Inf" else "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let labels_str labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let sample buf name labels v =
  Buffer.add_string buf name;
  Buffer.add_string buf (labels_str labels);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (number v);
  Buffer.add_char buf '\n'

(* Units the repo's metric names carry as suffixes. OpenMetrics
   requires the UNIT text to be a suffix of the family name, so only
   names ending in one of these get a UNIT line. *)
let unit_suffixes = [ "seconds"; "joules"; "mj"; "mw"; "bytes"; "frames" ]

let unit_of_name name =
  List.find_opt (fun u -> String.ends_with ~suffix:("_" ^ u) name) unit_suffixes

let header buf ~name ~help ~kind =
  if help <> "" then
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
  match unit_of_name name with
  | Some u -> Buffer.add_string buf (Printf.sprintf "# UNIT %s %s\n" name u)
  | None -> ()

(* OpenMetrics counters carry the base name in the TYPE header and a
   [_total] suffix on the sample line. *)
let counter_names family =
  match String.ends_with ~suffix:"_total" family with
  | true -> (String.sub family 0 (String.length family - 6), family)
  | false -> (family, family ^ "_total")

let render_family buf (f : Registry.family_snapshot) =
  match f.kind with
  | Registry.Counter ->
    let base, sample_name = counter_names f.family in
    header buf ~name:base ~help:f.help ~kind:"counter";
    List.iter
      (fun (s : Registry.series) ->
        match s.value with
        | Registry.Counter_v n -> sample buf sample_name s.labels (float_of_int n)
        | _ -> ())
      f.series
  | Registry.Gauge ->
    header buf ~name:f.family ~help:f.help ~kind:"gauge";
    List.iter
      (fun (s : Registry.series) ->
        match s.value with
        | Registry.Gauge_v v -> sample buf f.family s.labels v
        | _ -> ())
      f.series
  | Registry.Histogram ->
    header buf ~name:f.family ~help:f.help ~kind:"histogram";
    List.iter
      (fun (s : Registry.series) ->
        match s.value with
        | Registry.Histogram_v { buckets; overflow = _; count; sum } ->
          let cumulative = ref 0 in
          List.iter
            (fun (bound, n) ->
              cumulative := !cumulative + n;
              sample buf (f.family ^ "_bucket")
                (s.labels @ [ ("le", number bound) ])
                (float_of_int !cumulative))
            buckets;
          sample buf (f.family ^ "_bucket")
            (s.labels @ [ ("le", "+Inf") ])
            (float_of_int count);
          sample buf (f.family ^ "_sum") s.labels sum;
          sample buf (f.family ^ "_count") s.labels (float_of_int count)
        | _ -> ())
      f.series

let render_quantiles buf (series : Registry.quantile_series list) =
  (* Group consecutive series of the same family under one header;
     the input is already sorted by family then labels. *)
  let last_family = ref "" in
  List.iter
    (fun (qs : Registry.quantile_series) ->
      let name = qs.q_family ^ "_quantiles" in
      if name <> !last_family then begin
        header buf ~name
          ~help:(Printf.sprintf "Streaming quantile sketch over %s" qs.q_family)
          ~kind:"summary";
        last_family := name
      end;
      List.iter
        (fun (q, v) ->
          sample buf name (qs.q_labels @ [ ("quantile", number q) ]) v)
        qs.q_values;
      sample buf (name ^ "_count") qs.q_labels (float_of_int qs.q_count))
    series

let render_critical_path buf (hotspots : Trace.hotspot list) =
  if hotspots <> [] then begin
    header buf ~name:"trace_span_seconds"
      ~help:"Recorded time per trace stage (critical-path summary)"
      ~kind:"gauge";
    List.iter
      (fun (h : Trace.hotspot) ->
        let secs ns = Clock.ns_to_s ns in
        sample buf "trace_span_seconds"
          [ ("span", h.h_name); ("stat", "total") ]
          (secs h.h_total_ns);
        sample buf "trace_span_seconds"
          [ ("span", h.h_name); ("stat", "max") ]
          (secs h.h_max_ns))
      hotspots;
    header buf ~name:"trace_span_count"
      ~help:"Occurrences per trace stage" ~kind:"gauge";
    List.iter
      (fun (h : Trace.hotspot) ->
        sample buf "trace_span_count" [ ("span", h.h_name) ]
          (float_of_int h.h_count))
      hotspots
  end

let render ?(quantiles = []) ?(critical_path = []) (snap : Registry.snapshot) =
  let buf = Buffer.create 4096 in
  List.iter (render_family buf) snap;
  render_quantiles buf quantiles;
  render_critical_path buf critical_path;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let of_registry ?registry ?qs ?(trace_top = 10) () =
  let snap = Registry.snapshot ?registry () in
  let quantiles = Registry.quantiles ?registry ?qs () in
  let critical_path =
    if trace_top <= 0 then [] else Trace.critical_path ~top:trace_top ()
  in
  render ~quantiles ~critical_path snap

let write_file ~path text =
  match
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text)
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
