(** The three instrument kinds.

    All instruments are lock-free (single atomics or CAS loops) and
    safe to update from concurrent domains. Updates are dropped while
    observability is disabled ({!Control.on} is [false]), so holding a
    handle in a hot path costs one atomic load per call when off. *)

module Counter : sig
  type t

  val create : unit -> t

  val incr : ?by:int -> t -> unit
  (** Monotone increment; [by] must be non-negative (negative
      increments are dropped rather than corrupting monotonicity). *)

  val value : t -> int

  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
  val reset : t -> unit
end

module Histogram : sig
  type t

  val create : buckets:float array -> t
  (** [buckets] are strictly increasing upper bounds; an implicit
      overflow bucket catches everything above the last bound. *)

  val observe : t -> float -> unit
  (** Records a sample. NaN and negative samples (clock skew, bad
      subtraction) are clamped to 0 and accounted in
      {!dropped_samples_total} rather than corrupting the buckets.
      While monitoring is on ({!Control.monitor_on}), the sample also
      feeds the histogram's quantile sketch. *)

  val count : t -> int
  val sum : t -> float

  val quantile : t -> float -> float option
  (** Streaming quantile from the attached sketch (ε = the
      {!Sketch.create} default). [None] until monitoring has fed at
      least one sample. *)

  val sketch_count : t -> int
  (** Samples the sketch has seen — differs from {!count} when
      monitoring was enabled for only part of the run. *)

  val bucket_counts : t -> (float * int) array
  (** Per-bucket (upper_bound, count) pairs, non-cumulative. *)

  val overflow : t -> int
  val bounds : t -> float array
  val reset : t -> unit
end

val dropped_samples_total : unit -> int
(** Process-wide count of histogram samples clamped by the NaN /
    negative guard. Surfaced by the default registry snapshot as the
    [obs_dropped_samples_total] family. *)

val reset_dropped_samples : unit -> unit

val default_time_buckets : float array
(** Seconds, spanning 1 µs .. 10 s in decade steps. *)

val default_fraction_buckets : float array
(** Dimensionless 0..1 quantities (clip percentages, savings). *)
