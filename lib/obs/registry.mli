(** Process-global metrics registry.

    Instruments are organised into {e families} (one name, one kind,
    one help string) holding one series per label set — the Prometheus
    data model. Handle acquisition ([counter] / [gauge] / [histogram])
    is get-or-create and thread-safe; callers cache the returned
    handle and update it lock-free. [snapshot] produces an immutable
    view that the text and JSON renderers (and the tests) consume. *)

type t

val create : unit -> t

val default : t
(** The process-global registry all library instrumentation uses. *)

val counter :
  ?registry:t -> ?help:string -> string -> (string * string) list ->
  Metrics.Counter.t
(** [counter name labels] returns the counter series for [labels] in
    family [name], creating family and series as needed. Raises
    [Invalid_argument] if [name] exists with a different kind. *)

val gauge :
  ?registry:t -> ?help:string -> string -> (string * string) list ->
  Metrics.Gauge.t

val histogram :
  ?registry:t -> ?help:string -> ?buckets:float array -> string ->
  (string * string) list -> Metrics.Histogram.t
(** [buckets] applies when the family is created; later calls reuse
    the family's buckets. Defaults to {!Metrics.default_time_buckets}. *)

(** {1 Snapshots} *)

type kind = Counter | Gauge | Histogram

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      buckets : (float * int) list;  (** (upper bound, count), non-cumulative *)
      overflow : int;
      count : int;
      sum : float;
    }

type series = { labels : (string * string) list; value : value }

type family_snapshot = {
  family : string;
  help : string;
  kind : kind;
  series : series list;
}

type snapshot = family_snapshot list

val snapshot : ?registry:t -> unit -> snapshot
(** Families sorted by name, series sorted by labels — deterministic.
    On the default registry the snapshot also carries synthetic
    counter families once their counts are nonzero:
    [obs_dropped_samples_total] (histogram samples clamped by the
    NaN/negative guard) and [obs_series_dropped_total] (time-series
    creations refused by the {!Timeseries} cardinality guard). *)

val reset : ?registry:t -> unit -> unit
(** Zero every series in place. Cached handles stay valid. *)

val family_count : ?registry:t -> unit -> int

(** {1 Quantiles}

    While monitoring is on ({!Control.monitor_on}), every histogram
    series feeds a streaming quantile sketch alongside its buckets;
    these accessors read the sketches back. *)

type quantile_series = {
  q_family : string;
  q_labels : (string * string) list;
  q_count : int;  (** samples the sketch has seen *)
  q_values : (float * float) list;  (** (quantile, value) pairs *)
}

val default_quantiles : float list
(** p50 / p90 / p99. *)

val quantiles :
  ?registry:t -> ?qs:float list -> unit -> quantile_series list
(** Every histogram series whose sketch has data, sorted by family
    then labels — deterministic. *)

val quantile_of_family : ?registry:t -> string -> float -> float option
(** [quantile_of_family name q] is the {e worst} (largest) value of
    quantile [q] across the series of histogram family [name] — the
    reading SLO rules gate on, so no labelled series may hide a
    breach. [None] when the family is missing or has no sketch data. *)

val pp_text : Format.formatter -> snapshot -> unit
(** Human-readable summary table. *)

val to_json : snapshot -> Json.t

val of_json : Json.t -> (snapshot, string) result
(** Inverse of {!to_json}; [of_json (to_json s) = Ok s]. *)
