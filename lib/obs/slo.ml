type stat =
  | Quantile of float
  | Rate_per_s
  | Ratio_per_frame
  | Last

type op = Lt | Le | Gt | Ge | Eq

type rule = {
  metric : string;
  stat : stat;
  op : op;
  threshold : float;
  source : string;
}

let op_name = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "=="

let holds op ~value ~threshold =
  match op with
  | Lt -> value < threshold
  | Le -> value <= threshold
  | Gt -> value > threshold
  | Ge -> value >= threshold
  | Eq -> value = threshold

let strip_suffix ~suffix s =
  if String.length s > String.length suffix
     && String.ends_with ~suffix s
  then Some (String.sub s 0 (String.length s - String.length suffix))
  else None

(* [name_p99] / [name_p999] → quantile digits scaled by their length,
   so p5 = 0.5, p95 = 0.95, p999 = 0.999. *)
let split_quantile s =
  match String.rindex_opt s '_' with
  | Some i
    when i + 2 < String.length s
         && s.[i + 1] = 'p'
         && String.for_all
              (fun c -> c >= '0' && c <= '9')
              (String.sub s (i + 2) (String.length s - i - 2)) ->
    let digits = String.sub s (i + 2) (String.length s - i - 2) in
    let scale = Float.pow 10. (float_of_int (String.length digits)) in
    Some (String.sub s 0 i, float_of_string digits /. scale)
  | _ -> None

let selector s =
  match split_quantile s with
  | Some (metric, q) -> (metric, Quantile q)
  | None -> (
    match strip_suffix ~suffix:"_per_s" s with
    | Some metric -> (metric, Rate_per_s)
    | None -> (
      match strip_suffix ~suffix:"_rate" s with
      | Some metric -> (metric, Ratio_per_frame)
      | None -> (s, Last)))

let parse_line line =
  let body =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) body)
    |> List.filter (fun tok -> tok <> "")
  with
  | [] -> Ok None
  | [ sel; op; threshold ] -> (
    let op =
      match op with
      | "<" -> Ok Lt
      | "<=" -> Ok Le
      | ">" -> Ok Gt
      | ">=" -> Ok Ge
      | "==" | "=" -> Ok Eq
      | other -> Error (Printf.sprintf "unknown operator %S" other)
    in
    match (op, float_of_string_opt threshold) with
    | Error e, _ -> Error e
    | Ok _, None -> Error (Printf.sprintf "bad threshold %S" threshold)
    | Ok op, Some threshold ->
      let metric, stat = selector sel in
      if metric = "" then Error (Printf.sprintf "empty metric in %S" sel)
      else
        Ok
          (Some
             {
               metric;
               stat;
               op;
               threshold;
               source = Printf.sprintf "%s %s %s" sel (op_name op)
                   (String.trim (Printf.sprintf "%g" threshold));
             }))
  | toks ->
    Error
      (Printf.sprintf "expected `metric op threshold`, got %d tokens"
         (List.length toks))

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok None -> go (n + 1) acc rest
      | Ok (Some rule) -> go (n + 1) (rule :: acc) rest
      | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 [] lines

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let of_string_exn s =
  match parse_line s with
  | Ok (Some rule) -> rule
  | Ok None -> invalid_arg ("Obs.Slo.of_string_exn: empty rule: " ^ s)
  | Error e -> invalid_arg ("Obs.Slo.of_string_exn: " ^ e)

let defaults ~quality =
  [
    of_string_exn "streaming_frame_latency_seconds_p99 < 0.25";
    of_string_exn (Printf.sprintf "annot_clip_fraction_p95 <= %.6g" quality);
    of_string_exn "deadline_miss_rate < 0.05";
    of_string_exn "backlight_switches_per_s < 6";
  ]

let pp ppf r = Format.pp_print_string ppf r.source
