(** Minimal self-contained JSON values.

    The observability layer renders metric snapshots, trace events and
    structured log lines as JSON without pulling a serialisation
    dependency into the build. The renderer escapes strings per RFC
    8259; the reader accepts exactly what the renderer emits (plus
    insignificant whitespace), which is all the round-trip tests and
    the snapshot loader need. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Floats are printed with enough digits to
    round-trip through {!of_string} exactly. *)

val pp : Format.formatter -> t -> unit
(** Same output as {!to_string}. *)

val of_string : string -> (t, string) result
(** Parse a single JSON value; trailing garbage is an error. *)

val member : string -> t -> t option
(** [member key json] looks a key up in an [Obj]; [None] otherwise. *)
