type slot = {
  index : int;
  start_s : float;
  duration_s : float;
  total : float;
  last : float option;
}

(* A window never synchronizes itself: every instance is a private
   member of a monitor or breaker and is mutated under that owner's
   lock (or its single-threaded control plane). *)
type t = {
  ring : slot option array;
  mutable write_pos : int;  (* owned_by: the enclosing monitor/breaker; total slots ever closed *)
  mutable current : float;  (* owned_by: the enclosing monitor/breaker *)
  mutable last : float option;  (* owned_by: the enclosing monitor/breaker *)
  mutable lifetime : float;  (* owned_by: the enclosing monitor/breaker *)
}

let create ?(history = 64) () =
  if history <= 0 then invalid_arg "Obs.Window.create: history must be positive";
  { ring = Array.make history None; write_pos = 0; current = 0.; last = None; lifetime = 0. }

let add t v =
  t.current <- t.current +. v;
  t.lifetime <- t.lifetime +. v

let set t v = t.last <- Some v

let current t = t.current

let last_value t = t.last

let lifetime_total t = t.lifetime

let close t ~index ~start_s ~duration_s =
  if duration_s <= 0. then invalid_arg "Obs.Window.close: duration must be positive";
  let slot = { index; start_s; duration_s; total = t.current; last = t.last } in
  let capacity = Array.length t.ring in
  t.ring.(t.write_pos mod capacity) <- Some slot;
  t.write_pos <- t.write_pos + 1;
  t.current <- 0.;
  slot

let recent t =
  let capacity = Array.length t.ring in
  let first = max 0 (t.write_pos - capacity) in
  let slots = ref [] in
  for i = t.write_pos - 1 downto first do
    match t.ring.(i mod capacity) with
    | Some s -> slots := s :: !slots
    | None -> ()
  done;
  !slots

let closed_count t = t.write_pos
