let enabled = Atomic.make false

let set v = Atomic.set enabled v

let on () = Atomic.get enabled

(* The monitor switch is subordinate to the main one: quantile
   sketches and windowed series only record when both are on, so a
   plain --obs run keeps the PR-1 cost profile. *)
let monitor = Atomic.make false

let set_monitor v = Atomic.set monitor v

let monitor_on () = Atomic.get enabled && Atomic.get monitor
