let enabled = Atomic.make false

let set v = Atomic.set enabled v

let on () = Atomic.get enabled
