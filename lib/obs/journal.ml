(* Flight recorder: append-only decision log with the same
   varint+CRC32 framing discipline as Annotation.Encoding (own copy of
   the CRC: lib/obs sits below lib/annot and cannot depend on it).
   Events are integers and short strings only — no floats — so the
   serialised journal of a deterministic run is itself
   byte-deterministic. *)

type trigger = Record_lost | Record_corrupt | Header_lost

type kind =
  | Session_start of {
      clip : string;
      device : string;
      quality : string;
      frames : int;
      fps_milli : int;
    }
  | Scene_decision of {
      scene : int;
      first_frame : int;
      frame_count : int;
      register : int;
      effective_max : int;
      compensation_fp : int;
      clipped_permille : int;
      quality_permille : int;
      candidates : int list;
    }
  | Scene_cut of { scene : int; frame : int }
  | Backlight_switch of { frame : int; from_register : int; to_register : int }
  | Deadline_miss of { frame : int; over_us : int }
  | Channel of { packets : int; delivered : int }
  | Nack_round of { round : int; missing : int; repaired : int }
  | Fec_outcome of { failed_groups : int; repaired_packets : int }
  | Degradation of { index : int; trigger : trigger; policy : string }
  | Dvfs_choice of { policy : string; mean_mhz : int; misses : int }
  | Slo_breach of {
      rule : string;
      window : int;
      value_milli : int;
      window_us : int;
    }
  | Session_end of {
      survived : bool;
      degraded_scenes : int;
      retransmissions : int;
      corrupt_records : int;
    }
  | Ladder_step of { scene : int; depth : int; step : string }
  | Breaker_transition of {
      name : string;
      from_state : int;
      to_state : int;
      failure_permille : int;
    }
  | Bulkhead_decision of {
      name : string;
      decision : string;
      in_flight : int;
      queued : int;
    }
  | Watchdog_trip of { stage : string; budget_us : int; over_us : int }
  | Fleet_shard_start of { shard : int; shards : int; sessions : int }
  | Fleet_arrival of { session : int; clip : string }
  | Fleet_admission of {
      session : int;
      decision : string;
      in_flight : int;
      queued : int;
    }
  | Fleet_session_end of {
      session : int;
      outcome : string;
      degraded_scenes : int;
    }

type event = { t_us : int; kind : kind }

let magic = "AJNL"

let version = 1

(* Annotate events replay the clip timeline, transmit events the NACK
   budget, playback events the playback clock, fleet events the
   scheduler's arrival clock: independent simulated clocks, so
   monotonicity only holds per phase (and resets at every
   Session_start — and at every Fleet_shard_start, whose phase-0
   marker lets per-shard journals concatenate into one fleet journal
   without tripping the per-phase monotonicity audit). *)
let phase = function
  | Session_start _ | Bulkhead_decision _ | Fleet_shard_start _ -> 0
  | Scene_decision _ -> 1
  | Channel _ | Nack_round _ | Fec_outcome _ | Degradation _ | Ladder_step _
  | Breaker_transition _ | Watchdog_trip _ ->
    2
  | Scene_cut _ | Backlight_switch _ | Deadline_miss _ | Dvfs_choice _
  | Slo_breach _ ->
    3
  | Session_end _ -> 4
  | Fleet_arrival _ | Fleet_admission _ | Fleet_session_end _ -> 5

(* --- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) -------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 data =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    data;
  !c lxor 0xffffffff

(* --- recorder ----------------------------------------------------------- *)

type t = {
  mutex : Mutex.t;
  mutable events_rev : event list;  (* guarded_by: mutex *)
  mutable count : int;  (* guarded_by: mutex *)
}

let create () = { mutex = Mutex.create (); events_rev = []; count = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record_in t ?(t_s = 0.) kind =
  let t_us =
    if Float.is_finite t_s && t_s > 0. then
      int_of_float (Float.round (t_s *. 1e6))
    else 0
  in
  with_lock t (fun () ->
      t.events_rev <- { t_us; kind } :: t.events_rev;
      t.count <- t.count + 1)

let events t = with_lock t (fun () -> List.rev t.events_rev)

let length t = with_lock t (fun () -> t.count)

(* Atomic rather than a plain ref: [record] races with
   [install]/[uninstall] when pool domains journal while the driver
   swaps recorders, and a torn option read would be undefined
   behaviour under the memory model. *)
let instance : t option Atomic.t = Atomic.make None

let install t = Atomic.set instance (Some t)

let uninstall () = Atomic.set instance None

let current () = Atomic.get instance

let installed () = Option.is_some (Atomic.get instance)

let record ?t_s kind =
  if Control.on () then
    match Atomic.get instance with
    | None -> ()
    | Some t -> record_in t ?t_s kind

(* --- writing ------------------------------------------------------------ *)

let put_varint buf n =
  if n < 0 then invalid_arg "Journal: negative varint";
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

(* Signed fields (the SLO breach reading can sit below zero) ride as
   zigzag varints. *)
let zigzag n = (n lsl 1) lxor (n asr 62)

let unzigzag v = (v lsr 1) lxor (-(v land 1))

let trigger_tag = function
  | Record_lost -> 0
  | Record_corrupt -> 1
  | Header_lost -> 2

let encode_payload buf { t_us; kind } =
  let tag n = Buffer.add_char buf (Char.chr n) in
  let v = put_varint buf in
  let s = put_string buf in
  (match kind with
  | Session_start _ -> tag 1
  | Scene_decision _ -> tag 2
  | Scene_cut _ -> tag 3
  | Backlight_switch _ -> tag 4
  | Deadline_miss _ -> tag 5
  | Channel _ -> tag 6
  | Nack_round _ -> tag 7
  | Fec_outcome _ -> tag 8
  | Degradation _ -> tag 9
  | Dvfs_choice _ -> tag 10
  | Slo_breach _ -> tag 11
  | Session_end _ -> tag 12
  | Ladder_step _ -> tag 13
  | Breaker_transition _ -> tag 14
  | Bulkhead_decision _ -> tag 15
  | Watchdog_trip _ -> tag 16
  | Fleet_shard_start _ -> tag 17
  | Fleet_arrival _ -> tag 18
  | Fleet_admission _ -> tag 19
  | Fleet_session_end _ -> tag 20);
  v t_us;
  match kind with
  | Session_start e ->
    s e.clip;
    s e.device;
    s e.quality;
    v e.frames;
    v e.fps_milli
  | Scene_decision e ->
    v e.scene;
    v e.first_frame;
    v e.frame_count;
    v e.register;
    v e.effective_max;
    v e.compensation_fp;
    v e.clipped_permille;
    v e.quality_permille;
    v (List.length e.candidates);
    List.iter v e.candidates
  | Scene_cut e ->
    v e.scene;
    v e.frame
  | Backlight_switch e ->
    v e.frame;
    v e.from_register;
    v e.to_register
  | Deadline_miss e ->
    v e.frame;
    v e.over_us
  | Channel e ->
    v e.packets;
    v e.delivered
  | Nack_round e ->
    v e.round;
    v e.missing;
    v e.repaired
  | Fec_outcome e ->
    v e.failed_groups;
    v e.repaired_packets
  | Degradation e ->
    if e.index < -1 then invalid_arg "Journal: degradation index below -1";
    v (e.index + 1);
    tag (trigger_tag e.trigger);
    s e.policy
  | Dvfs_choice e ->
    s e.policy;
    v e.mean_mhz;
    v e.misses
  | Slo_breach e ->
    s e.rule;
    v e.window;
    v (zigzag e.value_milli);
    v e.window_us
  | Session_end e ->
    tag (if e.survived then 1 else 0);
    v e.degraded_scenes;
    v e.retransmissions;
    v e.corrupt_records
  | Ladder_step e ->
    if e.scene < -1 then invalid_arg "Journal: ladder scene below -1";
    v (e.scene + 1);
    v e.depth;
    s e.step
  | Breaker_transition e ->
    s e.name;
    v e.from_state;
    v e.to_state;
    v e.failure_permille
  | Bulkhead_decision e ->
    s e.name;
    s e.decision;
    v e.in_flight;
    v e.queued
  | Watchdog_trip e ->
    s e.stage;
    v e.budget_us;
    v e.over_us
  | Fleet_shard_start e ->
    v e.shard;
    v e.shards;
    v e.sessions
  | Fleet_arrival e ->
    v e.session;
    s e.clip
  | Fleet_admission e ->
    v e.session;
    s e.decision;
    v e.in_flight;
    v e.queued
  | Fleet_session_end e ->
    v e.session;
    s e.outcome;
    v e.degraded_scenes

let encode events =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_u32 buf (crc32 (Buffer.contents buf));
  let payload = Buffer.create 64 in
  List.iter
    (fun event ->
      Buffer.clear payload;
      encode_payload payload event;
      put_varint buf (Buffer.length payload);
      Buffer.add_buffer buf payload;
      put_u32 buf (crc32 (Buffer.contents payload)))
    events;
  Buffer.contents buf

let to_string t = encode (events t)

let size_bytes t = String.length (to_string t)

let write t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* --- reading ------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { data : string; mutable pos : int (* owned_by: the decoding call; a cursor never escapes it *) }

let need c n =
  if c.pos + n > String.length c.data then raise (Parse_error "truncated input")

let get_byte c =
  need c 1;
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let rec loop shift acc =
    if shift > 56 then raise (Parse_error "varint too long");
    let b = get_byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then raise (Parse_error "varint overflow");
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let max_string_len = 4096

let get_string c =
  let n = get_varint c in
  if n > max_string_len then raise (Parse_error "implausible string length");
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_u32 c =
  need c 4;
  let b i = Char.code c.data.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let get_trigger c =
  match get_byte c with
  | 0 -> Record_lost
  | 1 -> Record_corrupt
  | 2 -> Header_lost
  | n -> raise (Parse_error (Printf.sprintf "unknown degradation trigger %d" n))

let get_candidates c =
  let n = get_varint c in
  if n > 256 then raise (Parse_error "implausible candidate count");
  (* Explicit loop: the reads must happen left to right. *)
  let rec loop k acc =
    if k = 0 then List.rev acc else loop (k - 1) (get_varint c :: acc)
  in
  loop n []

let decode_kind c tag =
  match tag with
  | 1 ->
    let clip = get_string c in
    let device = get_string c in
    let quality = get_string c in
    let frames = get_varint c in
    let fps_milli = get_varint c in
    Session_start { clip; device; quality; frames; fps_milli }
  | 2 ->
    let scene = get_varint c in
    let first_frame = get_varint c in
    let frame_count = get_varint c in
    let register = get_varint c in
    let effective_max = get_varint c in
    let compensation_fp = get_varint c in
    let clipped_permille = get_varint c in
    let quality_permille = get_varint c in
    let candidates = get_candidates c in
    Scene_decision
      {
        scene;
        first_frame;
        frame_count;
        register;
        effective_max;
        compensation_fp;
        clipped_permille;
        quality_permille;
        candidates;
      }
  | 3 ->
    let scene = get_varint c in
    let frame = get_varint c in
    Scene_cut { scene; frame }
  | 4 ->
    let frame = get_varint c in
    let from_register = get_varint c in
    let to_register = get_varint c in
    Backlight_switch { frame; from_register; to_register }
  | 5 ->
    let frame = get_varint c in
    let over_us = get_varint c in
    Deadline_miss { frame; over_us }
  | 6 ->
    let packets = get_varint c in
    let delivered = get_varint c in
    Channel { packets; delivered }
  | 7 ->
    let round = get_varint c in
    let missing = get_varint c in
    let repaired = get_varint c in
    Nack_round { round; missing; repaired }
  | 8 ->
    let failed_groups = get_varint c in
    let repaired_packets = get_varint c in
    Fec_outcome { failed_groups; repaired_packets }
  | 9 ->
    let index = get_varint c - 1 in
    let trigger = get_trigger c in
    let policy = get_string c in
    Degradation { index; trigger; policy }
  | 10 ->
    let policy = get_string c in
    let mean_mhz = get_varint c in
    let misses = get_varint c in
    Dvfs_choice { policy; mean_mhz; misses }
  | 11 ->
    let rule = get_string c in
    let window = get_varint c in
    let value_milli = unzigzag (get_varint c) in
    let window_us = get_varint c in
    Slo_breach { rule; window; value_milli; window_us }
  | 12 ->
    let survived = get_byte c <> 0 in
    let degraded_scenes = get_varint c in
    let retransmissions = get_varint c in
    let corrupt_records = get_varint c in
    Session_end { survived; degraded_scenes; retransmissions; corrupt_records }
  | 13 ->
    let scene = get_varint c - 1 in
    let depth = get_varint c in
    let step = get_string c in
    Ladder_step { scene; depth; step }
  | 14 ->
    let name = get_string c in
    let from_state = get_varint c in
    let to_state = get_varint c in
    let failure_permille = get_varint c in
    Breaker_transition { name; from_state; to_state; failure_permille }
  | 15 ->
    let name = get_string c in
    let decision = get_string c in
    let in_flight = get_varint c in
    let queued = get_varint c in
    Bulkhead_decision { name; decision; in_flight; queued }
  | 16 ->
    let stage = get_string c in
    let budget_us = get_varint c in
    let over_us = get_varint c in
    Watchdog_trip { stage; budget_us; over_us }
  | 17 ->
    let shard = get_varint c in
    let shards = get_varint c in
    let sessions = get_varint c in
    Fleet_shard_start { shard; shards; sessions }
  | 18 ->
    let session = get_varint c in
    let clip = get_string c in
    Fleet_arrival { session; clip }
  | 19 ->
    let session = get_varint c in
    let decision = get_string c in
    let in_flight = get_varint c in
    let queued = get_varint c in
    Fleet_admission { session; decision; in_flight; queued }
  | 20 ->
    let session = get_varint c in
    let outcome = get_string c in
    let degraded_scenes = get_varint c in
    Fleet_session_end { session; outcome; degraded_scenes }
  | n -> raise (Parse_error (Printf.sprintf "unknown event kind %d" n))

let parse_payload payload =
  let c = { data = payload; pos = 0 } in
  try
    let tag = get_byte c in
    let t_us = get_varint c in
    let kind = decode_kind c tag in
    if c.pos <> String.length payload then
      raise (Parse_error "trailing bytes in event payload");
    Ok { t_us; kind }
  with Parse_error msg -> Error msg

(* A frame longer than this cannot come from [encode]; treating it as
   valid would let one flipped length byte swallow the rest of the
   journal. *)
let max_frame_len = 65536

let check_header data =
  let len = String.length data in
  if len < 4 || String.sub data 0 4 <> magic then
    Error "bad magic: not a decision journal"
  else if len < 5 then Error "truncated header"
  else if Char.code data.[4] <> version then
    Error (Printf.sprintf "unsupported journal version %d" (Char.code data.[4]))
  else if len < 9 then Error "truncated header CRC"
  else
    let stored =
      let b i = Char.code data.[5 + i] in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
    in
    if stored <> crc32 (String.sub data 0 5) then Error "header CRC mismatch"
    else Ok ()

let decode data =
  match check_header data with
  | Error msg -> Error msg
  | Ok () -> (
    let c = { data; pos = 9 } in
    try
      let events = ref [] in
      while c.pos < String.length data do
        let len = get_varint c in
        if len > max_frame_len then raise (Parse_error "implausible frame length");
        need c (len + 4);
        let payload = String.sub data c.pos len in
        c.pos <- c.pos + len;
        let stored = get_u32 c in
        if stored <> crc32 payload then raise (Parse_error "frame CRC mismatch");
        match parse_payload payload with
        | Ok event -> events := event :: !events
        | Error msg -> raise (Parse_error msg)
      done;
      Ok (List.rev !events)
    with Parse_error msg -> Error msg)

type partial = {
  events : event list;
  corrupt_frames : int;
  truncated : bool;
  error : string option;
}

let decode_partial data =
  match check_header data with
  | Error msg -> { events = []; corrupt_frames = 0; truncated = false; error = Some msg }
  | Ok () ->
    let c = { data; pos = 9 } in
    let events = ref [] in
    let corrupt = ref 0 in
    let truncated = ref false in
    (try
       while c.pos < String.length data do
         let len = get_varint c in
         if len > max_frame_len then raise (Parse_error "frame length");
         need c (len + 4);
         let payload = String.sub data c.pos len in
         c.pos <- c.pos + len;
         let stored = get_u32 c in
         if stored <> crc32 payload then incr corrupt
         else
           match parse_payload payload with
           | Ok event -> events := event :: !events
           | Error _ -> incr corrupt
       done
     with Parse_error _ ->
       (* A broken length varint means the framing itself cannot be
          trusted past this point: stop instead of resyncing on noise. *)
       truncated := true);
    {
      events = List.rev !events;
      corrupt_frames = !corrupt;
      truncated = !truncated;
      error = None;
    }
