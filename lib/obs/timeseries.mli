(** Label-keyed, fixed-interval time series on the simulated clock.

    Built for the energy profiler but generic: each series is a
    bounded bucket array anchored at t = 0 whose interval doubles
    (adjacent buckets merging pairwise) whenever an observation lands
    past the window. The merge state (count/sum/max) is commutative
    and associative, so snapshots are a pure function of the observed
    multiset — independent of arrival order and of how the feed was
    chunked. A cardinality guard bounds the number of (name, labels)
    pairs per store; refusals are counted locally and in a
    process-wide total the default registry exposes as
    [obs_series_dropped_total]. *)

type merge = Sum | Avg | Max
(** How bucket values are reported (and how the whole-series
    {!total} rolls up): sum of samples, their mean, or their max. *)

val merge_name : merge -> string
(** ["sum"], ["avg"] or ["max"]. *)

type point = { p_count : int; p_sum : float; p_max : float }
(** Raw merge state of one bucket. Exposed so property tests can
    check the algebra directly. *)

val empty_point : point

val point_of_sample : float -> point

val merge_points : point -> point -> point
(** Commutative, associative, with {!empty_point} as identity. *)

val point_value : merge -> point -> float option
(** Reported value of a bucket under a merge mode; [None] if empty. *)

(** {1 Series} *)

type series

val series_name : series -> string

val series_labels : series -> (string * string) list
(** Labels in canonical (key-sorted) order. *)

val series_merge : series -> merge

val interval_s : series -> float
(** Current bucket width; grows by doubling as the series downsamples. *)

val downsamples : series -> int
(** How many interval-doubling compactions have happened. *)

val observe : series -> t_s:float -> float -> unit
(** [observe se ~t_s v] records sample [v] at simulated time [t_s]
    seconds. Non-finite [v] is dropped; non-finite or negative [t_s]
    clamps to the first bucket. Not thread-safe per series — callers
    serialise (the profiler does). *)

(** {1 Store} *)

type t

val create : ?max_series:int -> ?interval_s:float -> ?capacity:int -> unit -> t
(** [create ()] — defaults: at most 64 series, 1 s buckets, 256
    buckets per series (rounded up to even). Raises [Invalid_argument]
    on non-positive parameters. *)

val series : t -> ?merge:merge -> string -> (string * string) list -> series option
(** [series t name labels] finds or creates the series keyed by
    [name] and the key-sorted [labels]. Returns [None] — and bumps the
    dropped counters — when the store is at [max_series] and the key
    is new. Raises [Invalid_argument] if the series exists with a
    different merge mode. *)

val dropped : t -> int
(** Series-creation refusals in this store. *)

val dropped_total : unit -> int
(** Process-wide refusal count across all stores, surfaced by the
    default registry as the [obs_series_dropped_total] family. *)

val series_count : t -> int

(** {1 Snapshots and diffs} *)

type snap_point = { t_s : float; count : int; sum : float; max_v : float }

type snap = {
  sn_name : string;
  sn_labels : (string * string) list;
  sn_merge : merge;
  sn_interval_s : float;
  sn_points : snap_point list;  (** non-empty buckets, ascending time *)
}

val snapshot : t -> snap list
(** Deterministic: series sorted by (name, labels), points by time. *)

val snap_value : merge -> snap_point -> float

val total : snap -> float
(** Whole-series roll-up under the series' own merge mode: grand
    total for [Sum], overall mean for [Avg], running max for [Max]. *)

type change = {
  c_name : string;
  c_labels : (string * string) list;
  c_before : float option;  (** [None]: series absent before *)
  c_after : float option;  (** [None]: series absent after *)
}

val delta : change -> float
(** [after - before], absent sides reading as zero. *)

val diff : before:snap list -> after:snap list -> change list
(** Totals-based comparison of two snapshots, sorted by (name,
    labels); series present on either side appear exactly once. *)

val snap_to_json : snap -> Json.t

val to_json : t -> Json.t
