(** Ring-buffered sliding-window accumulator.

    One windowed series: an open accumulation (sum of added deltas
    plus the last set value) and a ring of the most recent closed
    windows. The monitor owns the clock — it decides when a window
    closes and with what timestamps — so a series knows nothing about
    time except what it is told, which keeps everything deterministic
    on the simulated clock. *)

type slot = {
  index : int;  (** 0-based window number *)
  start_s : float;
  duration_s : float;  (** > 0 *)
  total : float;  (** deltas accumulated during the window *)
  last : float option;  (** last [set] value as of window close *)
}

type t

val create : ?history:int -> unit -> t
(** [history] bounds the ring (default 64); older closed windows are
    evicted. Raises [Invalid_argument] if not positive. *)

val add : t -> float -> unit
(** Accumulate into the open window (counter semantics). *)

val set : t -> float -> unit
(** Record a most-recent value (gauge semantics); carried across
    windows until overwritten. *)

val current : t -> float
(** Open-window accumulation so far. *)

val last_value : t -> float option
(** Most recent [set] value, if any. *)

val lifetime_total : t -> float
(** Sum of all deltas ever added, open window included. *)

val close : t -> index:int -> start_s:float -> duration_s:float -> slot
(** Seal the open window into a slot, push it on the ring, zero the
    open accumulation (the gauge value carries over), and return the
    slot just closed. Raises [Invalid_argument] on a non-positive
    duration. *)

val recent : t -> slot list
(** Closed windows still in the ring, oldest first. *)

val closed_count : t -> int
(** Windows closed over the series' lifetime (evicted ones included). *)
