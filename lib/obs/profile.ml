(* Energy-attribution profiler.

   Samples arrive as (component, millijoules) pairs from
   [Power.Meter.publish] and the per-scene attribution hook in the
   streaming session. Each sample is filed under the attribution path
   [open span stack ++ scene? ++ component], so the same joule shows
   up three ways: hierarchically (collapsed-stack flame graph of
   where energy went), over simulated time ([Timeseries] per
   component), and cumulatively (registry gauge + Chrome counter
   track). Purely observational: nothing in here feeds back into
   control decisions, and with no profiler installed [record] is a
   single option load. *)

type t = {
  mutex : Mutex.t;
  store : Timeseries.t;
  stacks : (string list, float ref) Hashtbl.t;  (* guarded_by: mutex *)
  components : (string, float ref) Hashtbl.t;  (* guarded_by: mutex, cumulative mJ *)
  mutable counters : Trace.counter list;  (* guarded_by: mutex, newest first *)
  mutable samples : int;  (* guarded_by: mutex *)
}

let create ?(interval_s = 1.) ?(max_series = 64) () =
  {
    mutex = Mutex.create ();
    store = Timeseries.create ~interval_s ~max_series ();
    stacks = Hashtbl.create 32;
    components = Hashtbl.create 8;
    counters = [];
    samples = 0;
  }

let with_lock p f =
  Mutex.lock p.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.mutex) f

(* --- process-global instance ------------------------------------------- *)

(* Atomic rather than a plain ref: [record] races with
   [install]/[uninstall] when pool domains attribute energy while the
   driver swaps profilers. *)
let instance : t option Atomic.t = Atomic.make None

let install p = Atomic.set instance (Some p)

let uninstall () = Atomic.set instance None

let current () = Atomic.get instance

let installed () = Option.is_some (Atomic.get instance)

(* --- recording ---------------------------------------------------------- *)

let obs_energy component =
  Registry.gauge ~help:"Cumulative attributed energy per component (mJ)"
    "profile_energy_mj"
    [ ("component", component) ]

(* Collapsed-stack segments may not contain the format's own
   separators. *)
let clean_segment s =
  String.map (function ';' | ' ' | '\n' -> '_' | c -> c) s

let bump tbl key mj =
  match Hashtbl.find_opt tbl key with
  | Some cell -> cell := !cell +. mj
  | None -> Hashtbl.add tbl key (ref mj)

let record_in p ?(t_s = 0.) ?scene ~component mj =
  if Float.is_finite mj then begin
    let base = Trace.current_path () in
    let path =
      base
      @ (match scene with
        | Some i -> [ "scene." ^ string_of_int i ]
        | None -> [])
      @ [ component ]
    in
    let now = Clock.now_ns () in
    (* Resolved before taking the profile lock: the gauge lookup takes
       the registry mutex, and nothing here needs both at once. *)
    let energy_gauge = obs_energy component in
    with_lock p (fun () ->
        p.samples <- p.samples + 1;
        bump p.stacks path mj;
        bump p.components component mj;
        (match
           (* lint: allow C004 the store mutex is a leaf lock below the
              profile mutex; the order is global *)
           Timeseries.series p.store ~merge:Timeseries.Sum "energy_mj"
             [ ("component", component) ]
         with
        | Some se -> Timeseries.observe se ~t_s mj
        | None -> ());
        Metrics.Gauge.add energy_gauge mj;
        (* One counter sample per recording, carrying every
           component's cumulative total: Perfetto stacks the args
           into an area chart of energy over (wall-clock) time. *)
        let values =
          Hashtbl.fold (fun c cell acc -> (c, !cell) :: acc) p.components []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        p.counters <-
          { Trace.c_name = "energy_mj"; c_ts_ns = now; c_values = values }
          :: p.counters)
  end

let record ?t_s ?scene ~component mj =
  if Control.on () then
    match Atomic.get instance with
    | None -> ()
    | Some p -> record_in p ?t_s ?scene ~component mj

(* --- readbacks ---------------------------------------------------------- *)

let samples p = with_lock p (fun () -> p.samples)

let compare_paths a b = compare (a : string list) b

let stacks p =
  with_lock p (fun () ->
      Hashtbl.fold (fun path cell acc -> (path, !cell) :: acc) p.stacks []
      |> List.sort (fun (a, _) (b, _) -> compare_paths a b))

let by_component p =
  with_lock p (fun () ->
      Hashtbl.fold (fun c cell acc -> (c, !cell) :: acc) p.components []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let total_mj p =
  List.fold_left (fun acc (_, mj) -> acc +. mj) 0. (by_component p)

let counter_events p = with_lock p (fun () -> List.rev p.counters)

let timeseries p = p.store

(* --- rendering ---------------------------------------------------------- *)

(* Collapsed-stack format: one [seg;seg;... value] line per path,
   integer values. Joules are tiny at session scale, so the unit is
   the microjoule — enough resolution that no real stack rounds to
   zero while flamegraph.pl-style folders still get integers. *)
let flamegraph p =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (path, mj) ->
      let uj = int_of_float (Float.round (mj *. 1000.)) in
      Buffer.add_string buf
        (String.concat ";" (List.map clean_segment path));
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int uj);
      Buffer.add_char buf '\n')
    (stacks p);
  Buffer.contents buf

let to_json p =
  let components = by_component p in
  Json.Obj
    [
      ("total_mj", Json.Float (total_mj p));
      ("samples", Json.Int (samples p));
      ( "components",
        Json.Obj (List.map (fun (c, mj) -> (c, Json.Float mj)) components) );
      ( "stacks",
        Json.List
          (List.map
             (fun (path, mj) ->
               Json.Obj
                 [
                   ("path", Json.String (String.concat ";" path));
                   ("mj", Json.Float mj);
                 ])
             (stacks p)) );
      ("series", Timeseries.to_json p.store);
    ]

let pp_summary ppf p =
  let components = by_component p in
  Format.fprintf ppf "@[<v>energy profile: %.3f mJ over %d samples@,"
    (total_mj p) (samples p);
  List.iter
    (fun (c, mj) -> Format.fprintf ppf "  %-12s %10.3f mJ@," c mj)
    components;
  Format.fprintf ppf "@]"
