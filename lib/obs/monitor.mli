(** Online health monitoring: sliding windows + SLO verdicts.

    A monitor advances on the {e simulated} session clock (callers
    tick it with frame timestamps), closes a window every [window_s]
    simulated seconds — or early, at a scene cut — and evaluates a
    set of declarative {!Slo} rules against each closed window:
    windowed rates read the monitor's own ring-buffered series,
    quantile rules read the sketches the registry histograms carry
    while monitoring is on. Because nothing reads the wall clock, a
    seeded run produces the same health report every time.

    At the end of a run {!report} additionally evaluates every
    quantile / gauge / lifetime-rate rule once against the whole
    session — the burn-rate verdicts say {e when} an objective was
    violated, the final column says whether the delivered session
    met it overall, which is what CI gates on.

    One monitor can be installed process-wide ({!install});
    instrumented libraries feed it through the nullary helpers
    ({!count}, {!gauge}, {!advance}, {!cut}) that no-op when nothing
    is installed or observability is off. *)

type t

val create :
  ?window_s:float ->
  ?history:int ->
  ?registry:Registry.t ->
  ?rules:Slo.rule list ->
  unit ->
  t
(** Defaults: 1-second windows, 64-window ring, the default registry,
    no rules. Raises [Invalid_argument] on a non-positive window or
    history. *)

val rules : t -> Slo.rule list
val window_s : t -> float

(** {1 Feeding (explicit instance)} *)

val incr : t -> ?by:int -> string -> unit
(** Bump a windowed counter series (created on first use). *)

val set_gauge : t -> string -> float -> unit

val tick : t -> now_s:float -> unit
(** Advance the simulated clock; closes and evaluates every window
    boundary crossed. Time never goes backwards — stale timestamps
    are ignored. *)

val cut : t -> now_s:float -> unit
(** Close the current window early (scene boundary): ticks to
    [now_s], then seals whatever partial window is open. *)

val frames_series : string
(** ["frames"] — the denominator {!Slo.Ratio_per_frame} rules use. *)

(** {1 Series declarations}

    Instrumentation sites declare the window-series names they feed,
    at module-initialisation time, so offline tooling
    ({!Check.Artifact}'s SLO checker) can tell a valid selector from a
    typo without running a session. *)

val declare_series : string -> string
(** [declare_series name] registers [name] as a known monitor series
    and returns it — declare-and-bind in one line:
    [let s_foo = Obs.Monitor.declare_series "foo"]. Idempotent and
    thread-safe. *)

val declared_series : unit -> string list
(** Every declared series name, sorted — the ground truth the SLO
    checker validates non-quantile selectors against. Only modules
    linked into the calling executable contribute ([bin/lint] links
    with [-linkall] for exactly this reason). *)

(** {1 Verdicts} *)

type breach = { window : int; at_s : float; value : float }

type verdict = {
  rule : Slo.rule;
  evaluated : int;  (** windows in which the rule had a reading *)
  breached : int;
  worst : float option;  (** worst windowed reading, per rule direction *)
  final : float option;  (** whole-session reading, when defined *)
  final_breach : bool;
  breaches : breach list;  (** chronological, capped at 8 *)
}

type report = {
  window_s : float;
  windows : int;  (** closed windows, trailing partial included *)
  duration_s : float;  (** simulated time covered *)
  verdicts : verdict list;
}

val verdict_ok : verdict -> bool
(** No breached window and no final breach. *)

val healthy : report -> bool

val report : t -> report
(** Seals the trailing partial window, runs the end-of-session
    evaluation and assembles the report. Idempotent feeding should
    stop afterwards. *)

val pp_report : Format.formatter -> report -> unit
(** The structured health report with breach annotations. *)

val report_to_json : report -> Json.t

(** {1 Process-global instance} *)

val install : t -> unit
(** Also flips {!Control.set_monitor} on. *)

val uninstall : unit -> unit
(** Clears the instance and flips the monitor switch off. *)

val installed : unit -> t option

(** Default-instance helpers for instrumentation sites; no-ops when
    no monitor is installed or observability is disabled. *)

val count : ?by:int -> string -> unit

val gauge : string -> float -> unit

val advance : now_s:float -> unit

val scene_cut : now_s:float -> unit
