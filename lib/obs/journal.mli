(** Deterministic flight recorder for session decisions.

    The observability layer measures a run (metrics, spans, windows);
    the journal *explains* it: an append-only log of every decision
    the pipeline took — which backlight level each scene got and what
    the candidates were, which packets the channel killed, how many
    NACK rounds the transport spent, which scenes degraded and why,
    what the DVFS governor picked, where the monitor saw an SLO
    breach. Because the whole simulator is a pure function of its
    inputs (DESIGN.md §8), two journals of the same run are
    byte-identical, so diffing two journals localises the *first
    divergent decision* between two configurations — the
    deterministic-replay debugging primitive {!Explain.diff} and
    [inspect diff] build on.

    Like {!Profile} and {!Monitor}, the recorder is a process-global
    installable: with nothing installed (or observability off)
    {!record} is a single load and the instrumented code paths are
    byte-identical — asserted in the tests. Events carry only integers
    and short strings (times in microseconds, ratios in permille,
    gains in the {!Annotation.Encoding} 4096 fixed point), never
    floats, so the wire form is trivially reproducible.

    Wire format (audited offline by [lint verify], V4xx): header
    ["AJNL"], a version byte, and a CRC32 of those five bytes; then
    one frame per event — varint payload length, payload, payload
    CRC32. A payload is a kind tag byte, a varint timestamp in
    microseconds of simulated time, and the kind's fields as varints
    and length-prefixed strings. Timestamps restart per pipeline phase
    (annotate, transmit, playback each replay their own clock), per
    session, and per stage run (one process may annotate several
    times), so monotonicity is checked within each contiguous run of
    same-phase events. CRC framing means a corrupt or truncated
    journal still
    yields every intact prefix event through {!decode_partial}. *)

type trigger =
  | Record_lost  (** annotation record bytes never arrived *)
  | Record_corrupt  (** record arrived but failed its CRC / sanity checks *)
  | Header_lost  (** stream header unusable: whole track fell back *)

type kind =
  | Session_start of {
      clip : string;
      device : string;
      quality : string;
      frames : int;
      fps_milli : int;
    }
  | Scene_decision of {
      scene : int;
      first_frame : int;
      frame_count : int;
      register : int;  (** chosen backlight level *)
      effective_max : int;
      compensation_fp : int;  (** luminance gain, x4096 fixed point *)
      clipped_permille : int;  (** quality score: clipped-pixel fraction *)
      quality_permille : int;  (** allowed loss the solver ran at *)
      candidates : int list;
          (** registers the solver would pick across the quality grid *)
    }
  | Scene_cut of { scene : int; frame : int }
  | Backlight_switch of { frame : int; from_register : int; to_register : int }
  | Deadline_miss of { frame : int; over_us : int }
  | Channel of { packets : int; delivered : int }
      (** one pass of the fault injector over a packet train *)
  | Nack_round of { round : int; missing : int; repaired : int }
  | Fec_outcome of { failed_groups : int; repaired_packets : int }
  | Degradation of { index : int; trigger : trigger; policy : string }
      (** annotation record [index] (-1: the whole track) fell back *)
  | Dvfs_choice of { policy : string; mean_mhz : int; misses : int }
  | Slo_breach of {
      rule : string;
      window : int;
      value_milli : int;  (** breaching reading, x1000 *)
      window_us : int;  (** duration of the breached window *)
    }
  | Session_end of {
      survived : bool;
      degraded_scenes : int;
      retransmissions : int;
      corrupt_records : int;
    }
  | Ladder_step of { scene : int; depth : int; step : string }
      (** scene [scene] (-1: the whole track) resolved at degradation
          rung [step] of depth [depth] (1 stale, 2 clamp, 3 full);
          fresh resolutions are not journaled *)
  | Breaker_transition of {
      name : string;
      from_state : int;  (** 0 closed, 1 half-open, 2 open *)
      to_state : int;
      failure_permille : int;  (** windowed failure rate when it fired *)
    }
  | Bulkhead_decision of {
      name : string;
      decision : string;  (** ["admitted"], ["queued"] or ["shed"] *)
      in_flight : int;
      queued : int;
    }
      (** admission verdict of a bulkhead compartment; recorded in the
          session-start phase at t = 0 because admission precedes any
          simulated stage clock *)
  | Watchdog_trip of { stage : string; budget_us : int; over_us : int }
      (** stage deadline watchdog fired: [stage] overran its budget by
          [over_us] and the session fell down the degradation ladder
          instead of raising *)
  | Fleet_shard_start of { shard : int; shards : int; sessions : int }
      (** one fleet shard's journal begins: shard [shard] of [shards]
          was assigned [sessions] sessions. Recorded at t = 0 in the
          session-start phase, so per-shard journals concatenate into
          one fleet journal without tripping the per-phase
          monotonicity audit (V406) *)
  | Fleet_arrival of { session : int; clip : string }
      (** the load generator delivered session [session] (fleet-wide
          id) for [clip] to this shard at the event's simulated time *)
  | Fleet_admission of {
      session : int;
      decision : string;
      in_flight : int;
      queued : int;
    }
      (** the shard-boundary admission verdict ("admitted", "queued"
          or "shed") with the shard occupancy at decision time *)
  | Fleet_session_end of {
      session : int;
      outcome : string;
      degraded_scenes : int;
    }
      (** a scheduled session left the shard: [outcome] is "ok",
          "degraded" (annotations lost or scenes degraded) or
          "error" *)

type event = { t_us : int; kind : kind }

(** {1 Recording} *)

type t

val create : unit -> t

val record_in : t -> ?t_s:float -> kind -> unit
(** [record_in t ~t_s kind] appends an event stamped [t_s] seconds of
    simulated time (default 0, clamped at 0). Thread-safe. *)

val events : t -> event list
(** All events, oldest first. *)

val length : t -> int

(** {1 Process-global instance}

    Mirrors {!Profile}: the instrumented pipeline records into
    whichever journal is installed, and records nothing — at the cost
    of one option load — when none is. *)

val install : t -> unit

val uninstall : unit -> unit

val current : unit -> t option

val installed : unit -> bool

val record : ?t_s:float -> kind -> unit
(** No-op unless observability is enabled and a journal is installed. *)

(** {1 Wire format} *)

val magic : string
(** ["AJNL"]. *)

val version : int

val crc32 : string -> int
(** CRC32 (IEEE 802.3, reflected) over a whole string — the checksum
    both the header and every frame carry. *)

val phase : kind -> int
(** Pipeline phase the kind belongs to — 0 session-start, 1 annotate,
    2 transmit, 3 playback, 4 session-end. Timestamps are monotone
    within each contiguous run of same-phase events, which is what the
    offline verifier checks (V406). *)

val encode : event list -> string

val to_string : t -> string
(** [encode (events t)]. *)

val size_bytes : t -> int

val write : t -> path:string -> unit
(** Raises [Sys_error] like any file write. *)

val parse_payload : string -> (event, string) result
(** Decodes one frame payload (kind tag, timestamp, fields); rejects
    unknown tags, malformed fields and trailing bytes. Exposed for the
    offline verifier, which walks the framing itself. *)

val decode : string -> (event list, string) result
(** Strict decode: any framing, CRC or schema problem fails the whole
    journal. *)

type partial = {
  events : event list;  (** every frame that decoded, oldest first *)
  corrupt_frames : int;  (** frames skipped over a CRC or schema failure *)
  truncated : bool;  (** the byte stream ended mid-frame *)
  error : string option;  (** fatal header-level problem, nothing walked *)
}

val decode_partial : string -> partial
(** Never raises: a damaged journal yields every event whose frame
    still checks out, so [inspect] can render a partial timeline of a
    run that crashed or a file that was corrupted at rest. *)
