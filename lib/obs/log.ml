type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type event = {
  ts_ns : int64;
  level : level;
  scope : string;
  message : string;
  fields : (string * Json.t) list;
}

let event_to_json e =
  Json.Obj
    ([
       ("ts_ns", Json.Float (Int64.to_float e.ts_ns));
       ("level", Json.String (level_name e.level));
       ("scope", Json.String e.scope);
       ("message", Json.String e.message);
     ]
    @ match e.fields with [] -> [] | fields -> [ ("fields", Json.Obj fields) ])

type sink_id = int

type sink = { id : sink_id; write : event -> unit; close : unit -> unit }

let mutex = Mutex.create ()

(* guarded_by: mutex *)
let sinks : sink list ref = ref []

(* guarded_by: mutex *)
let next_id = ref 0

let threshold = Atomic.make (severity Info)

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let attach_sink write close =
  with_lock (fun () ->
      incr next_id;
      let id = !next_id in
      sinks := { id; write; close } :: !sinks;
      id)

let attach write = attach_sink write (fun () -> ())

let detach id =
  with_lock (fun () ->
      let closing = List.filter (fun s -> s.id = id) !sinks in
      sinks := List.filter (fun s -> s.id <> id) !sinks;
      List.iter (fun s -> s.close ()) closing)

let detach_all () =
  with_lock (fun () ->
      let old = !sinks in
      sinks := [];
      List.iter (fun s -> s.close ()) old)

let attach_stderr () =
  attach (fun e ->
      (* lint: allow L005 this sink is the console backend the rule points at *)
      Printf.eprintf "[%s] %s: %s%s\n%!" (level_name e.level) e.scope e.message
        (match e.fields with
        | [] -> ""
        | fields -> " " ^ Json.to_string (Json.Obj fields)))

let attach_jsonl ~path =
  let oc = open_out path in
  attach_sink
    (fun e ->
      output_string oc (Json.to_string (event_to_json e));
      output_char oc '\n';
      flush oc)
    (fun () -> close_out oc)

let attach_ring ~capacity =
  if capacity <= 0 then invalid_arg "Obs.Log.attach_ring: capacity must be positive";
  let ring = Array.make capacity None in
  let write_pos = ref 0 in
  let ring_mutex = Mutex.create () in
  let write e =
    Mutex.lock ring_mutex;
    ring.(!write_pos mod capacity) <- Some e;
    incr write_pos;
    Mutex.unlock ring_mutex
  in
  let read () =
    Mutex.lock ring_mutex;
    let n = !write_pos in
    let events = ref [] in
    let first = if n > capacity then n - capacity else 0 in
    for i = n - 1 downto first do
      match ring.(i mod capacity) with
      | Some e -> events := e :: !events
      | None -> ()
    done;
    Mutex.unlock ring_mutex;
    !events
  in
  (attach write, read)

let set_level l = Atomic.set threshold (severity l)

let get_level () =
  match Atomic.get threshold with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let would_log level =
  Control.on ()
  && severity level >= Atomic.get threshold
  (* lint: allow C002 racy fast-path by design: a stale read only skips
     (or needlessly formats) one message; dispatch re-snapshots the sink
     list under the lock before writing *)
  && !sinks <> []

let dispatch e =
  (* Snapshot the sink list under the lock, write outside it so a slow
     sink cannot block attachment. *)
  let current = with_lock (fun () -> !sinks) in
  List.iter (fun s -> s.write e) current

let emit level ~scope ?(fields = []) message =
  if would_log level then
    dispatch { ts_ns = Clock.now_ns (); level; scope; message; fields }

let lazily level ~scope make =
  if would_log level then begin
    let message, fields = make () in
    dispatch { ts_ns = Clock.now_ns (); level; scope; message; fields }
  end

let debug ~scope make = lazily Debug ~scope make

let info ~scope make = lazily Info ~scope make

let warn ~scope make = lazily Warn ~scope make

let error ~scope make = lazily Error ~scope make
