(* Readbacks over the flight recorder: timeline rendering, run
   diffing, breach explanation. Pure functions of the event list — the
   [inspect] CLI is a thin shell around this module so the tests can
   pin its behaviour without spawning processes. *)

let kind_label (kind : Journal.kind) =
  match kind with
  | Journal.Session_start _ -> "session-start"
  | Journal.Scene_decision _ -> "scene-decision"
  | Journal.Scene_cut _ -> "scene-cut"
  | Journal.Backlight_switch _ -> "backlight-switch"
  | Journal.Deadline_miss _ -> "deadline-miss"
  | Journal.Channel _ -> "channel"
  | Journal.Nack_round _ -> "nack-round"
  | Journal.Fec_outcome _ -> "fec-outcome"
  | Journal.Degradation _ -> "degradation"
  | Journal.Dvfs_choice _ -> "dvfs-choice"
  | Journal.Slo_breach _ -> "slo-breach"
  | Journal.Session_end _ -> "session-end"
  | Journal.Ladder_step _ -> "ladder-step"
  | Journal.Breaker_transition _ -> "breaker-transition"
  | Journal.Bulkhead_decision _ -> "bulkhead-decision"
  | Journal.Watchdog_trip _ -> "watchdog-trip"
  | Journal.Fleet_shard_start _ -> "fleet-shard-start"
  | Journal.Fleet_arrival _ -> "fleet-arrival"
  | Journal.Fleet_admission _ -> "fleet-admission"
  | Journal.Fleet_session_end _ -> "fleet-session-end"

let trigger_label (t : Journal.trigger) =
  match t with
  | Journal.Record_lost -> "record lost"
  | Journal.Record_corrupt -> "record corrupt"
  | Journal.Header_lost -> "header lost"

let seconds t_us = float_of_int t_us /. 1e6

let pp_event ppf ({ Journal.t_us; kind } : Journal.event) =
  let open Format in
  fprintf ppf "t=%-9.3f %-16s " (seconds t_us) (kind_label kind);
  match kind with
  | Journal.Session_start e ->
    fprintf ppf "clip=%s device=%s quality=%s frames=%d fps=%.3f" e.clip
      e.device e.quality e.frames
      (float_of_int e.fps_milli /. 1000.)
  | Journal.Scene_decision e ->
    fprintf ppf
      "scene %d frames %d+%d -> reg %d (eff-max %d, comp x%.3f, clip %.1f%%, \
       allow %.1f%%, candidates [%s])"
      e.scene e.first_frame e.frame_count e.register e.effective_max
      (float_of_int e.compensation_fp /. 4096.)
      (float_of_int e.clipped_permille /. 10.)
      (float_of_int e.quality_permille /. 10.)
      (String.concat " " (List.map string_of_int e.candidates))
  | Journal.Scene_cut e -> fprintf ppf "-> scene %d (frame %d)" e.scene e.frame
  | Journal.Backlight_switch e ->
    fprintf ppf "%d -> %d (frame %d)" e.from_register e.to_register e.frame
  | Journal.Deadline_miss e -> fprintf ppf "frame %d (+%dus)" e.frame e.over_us
  | Journal.Channel e ->
    fprintf ppf "%d/%d packets delivered" e.delivered e.packets
  | Journal.Nack_round e ->
    fprintf ppf "round %d: %d missing, %d repaired" e.round e.missing e.repaired
  | Journal.Fec_outcome e ->
    fprintf ppf "%d failed group(s), %d packet(s) repaired" e.failed_groups
      e.repaired_packets
  | Journal.Degradation e ->
    if e.index < 0 then
      fprintf ppf "whole track (%s) -> %s" (trigger_label e.trigger) e.policy
    else
      fprintf ppf "record %d (%s) -> %s" e.index (trigger_label e.trigger)
        e.policy
  | Journal.Dvfs_choice e ->
    fprintf ppf "policy=%s mean %d MHz, %d miss(es)" e.policy e.mean_mhz
      e.misses
  | Journal.Slo_breach e ->
    fprintf ppf "%S -> %.6g in window %d" e.rule
      (float_of_int e.value_milli /. 1000.)
      e.window
  | Journal.Session_end e ->
    fprintf ppf "%s: %d degraded, %d retransmission(s), %d corrupt record(s)"
      (if e.survived then "annotations survived" else "annotations lost")
      e.degraded_scenes e.retransmissions e.corrupt_records
  | Journal.Ladder_step e ->
    if e.scene < 0 then
      fprintf ppf "whole track -> %s (depth %d)" e.step e.depth
    else fprintf ppf "scene %d -> %s (depth %d)" e.scene e.step e.depth
  | Journal.Breaker_transition e ->
    let st = function
      | 0 -> "closed"
      | 1 -> "half-open"
      | 2 -> "open"
      | n -> string_of_int n
    in
    fprintf ppf "%s: %s -> %s (failure rate %.1f%%)" e.name (st e.from_state)
      (st e.to_state)
      (float_of_int e.failure_permille /. 10.)
  | Journal.Bulkhead_decision e ->
    fprintf ppf "%s: %s (%d in flight, %d queued)" e.name e.decision
      e.in_flight e.queued
  | Journal.Watchdog_trip e ->
    fprintf ppf "%s overran %dus budget by %dus" e.stage e.budget_us e.over_us
  | Journal.Fleet_shard_start e ->
    fprintf ppf "shard %d/%d: %d sessions" e.shard e.shards e.sessions
  | Journal.Fleet_arrival e -> fprintf ppf "session %d: %s" e.session e.clip
  | Journal.Fleet_admission e ->
    fprintf ppf "session %d: %s (%d in flight, %d queued)" e.session e.decision
      e.in_flight e.queued
  | Journal.Fleet_session_end e ->
    fprintf ppf "session %d: %s (%d degraded scenes)" e.session e.outcome
      e.degraded_scenes

(* --- sessions ----------------------------------------------------------- *)

(* Split the stream at Session_start markers; anything before the
   first marker (a standalone playback, say) forms a headless leading
   session. *)
let sessions events =
  let flush acc current = List.rev current :: acc in
  let acc, current =
    List.fold_left
      (fun (acc, current) (event : Journal.event) ->
        match event.Journal.kind with
        | Journal.Session_start _ when current <> [] ->
          (flush acc current, [ event ])
        | _ -> (acc, event :: current))
      ([], []) events
  in
  List.rev (if current = [] then acc else flush acc current)

(* --- timeline ----------------------------------------------------------- *)

let scene_energy_of_folded text =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> ()
      | Some i -> (
        let path = String.sub line 0 i in
        let value = String.sub line (i + 1) (String.length line - i - 1) in
        match int_of_string_opt value with
        | None -> ()
        | Some uj ->
          List.iter
            (fun seg ->
              match
                if String.starts_with ~prefix:"scene." seg then
                  int_of_string_opt
                    (String.sub seg 6 (String.length seg - 6))
                else None
              with
              | None -> ()
              | Some scene ->
                Hashtbl.replace tbl scene
                  (uj
                  + match Hashtbl.find_opt tbl scene with
                    | Some v -> v
                    | None -> 0))
            (String.split_on_char ';' path)))
    (String.split_on_char '\n' text);
  Hashtbl.fold (fun scene uj acc -> (scene, uj) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let pp_timeline ?(scene_energy_uj = []) ppf events =
  let open Format in
  fprintf ppf "@[<v>";
  List.iteri
    (fun i session ->
      if i > 0 then fprintf ppf "@,";
      fprintf ppf "=== session %d (%d events) ===@," (i + 1)
        (List.length session);
      List.iter
        (fun (event : Journal.event) ->
          fprintf ppf "%a" pp_event event;
          (match event.Journal.kind with
          | Journal.Scene_decision e -> (
            match List.assoc_opt e.scene scene_energy_uj with
            | Some uj -> fprintf ppf "  energy %d uJ" uj
            | None -> ())
          | _ -> ());
          fprintf ppf "@,")
        session)
    (sessions events);
  fprintf ppf "@]"

(* --- run diff ----------------------------------------------------------- *)

type divergence = {
  index : int;
  left : Journal.event option;
  right : Journal.event option;
  left_tail : (string * int) list;
  right_tail : (string * int) list;
}

let tail_histogram events =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (event : Journal.event) ->
      let label = kind_label event.Journal.kind in
      Hashtbl.replace tbl label
        (1 + match Hashtbl.find_opt tbl label with Some n -> n | None -> 0))
    events;
  Hashtbl.fold (fun label n acc -> (label, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff left right =
  let rec walk index left right =
    match (left, right) with
    | [], [] -> None
    | l, r -> (
      match (l, r) with
      | a :: l_rest, b :: r_rest when a = b -> walk (index + 1) l_rest r_rest
      | _ ->
        let head = function [] -> None | e :: _ -> Some e in
        Some
          {
            index;
            left = head l;
            right = head r;
            left_tail = tail_histogram l;
            right_tail = tail_histogram r;
          })
  in
  walk 0 left right

let pp_tail ppf tail =
  if tail = [] then Format.fprintf ppf "(end of journal)"
  else
    Format.fprintf ppf "%s"
      (String.concat ", "
         (List.map (fun (label, n) -> Printf.sprintf "%d %s" n label) tail))

let pp_diff ppf = function
  | None -> Format.fprintf ppf "journals are identical"
  | Some d ->
    let open Format in
    let side name = function
      | None -> fprintf ppf "  %s: (journal ends)@," name
      | Some e -> fprintf ppf "  %s: %a@," name pp_event e
    in
    fprintf ppf "@[<v>first divergent decision at event %d:@," d.index;
    side "A" d.left;
    side "B" d.right;
    fprintf ppf "  suffix A: %a@," pp_tail d.left_tail;
    fprintf ppf "  suffix B: %a" pp_tail d.right_tail;
    fprintf ppf "@]"

(* --- breach explanation ------------------------------------------------- *)

type breach_explanation = {
  b_rule : string;
  b_window : int;
  b_at_us : int;
  b_value_milli : int;
  b_causes : (string * int) list;
  b_window_events : Journal.event list;
  b_session_events : Journal.event list;
}

(* Session-scope decisions: taken once per session but felt all run
   long, so every breach in the session lists them as context. *)
let session_scope (event : Journal.event) =
  match event.Journal.kind with
  | Journal.Channel _ | Journal.Nack_round _ | Journal.Fec_outcome _
  | Journal.Degradation _ | Journal.Dvfs_choice _ ->
    true
  | _ -> false

(* Windowed decisions share the playback clock with the breach stamp,
   so a time comparison against the window span is meaningful. *)
let windowed (event : Journal.event) =
  match event.Journal.kind with
  | Journal.Scene_cut _ | Journal.Backlight_switch _ | Journal.Deadline_miss _
    ->
    true
  | _ -> false

let rank window_events session_events =
  let tbl = Hashtbl.create 8 in
  let bump weight (event : Journal.event) =
    let label = kind_label event.Journal.kind in
    Hashtbl.replace tbl label
      (weight + match Hashtbl.find_opt tbl label with Some n -> n | None -> 0)
  in
  (* In-window coincidence is stronger evidence than session-wide
     context: weight 2 vs 1. *)
  List.iter (bump 2) window_events;
  List.iter (bump 1) session_events;
  Hashtbl.fold (fun label n acc -> (label, n) :: acc) tbl []
  |> List.sort (fun (la, na) (lb, nb) ->
         if na <> nb then compare (nb : int) na else String.compare la lb)

let explain ?rules events =
  let wanted rule =
    match rules with None -> true | Some rs -> List.mem rule rs
  in
  List.concat_map
    (fun session ->
      List.filter_map
        (fun (event : Journal.event) ->
          match event.Journal.kind with
          | Journal.Slo_breach b when wanted b.rule ->
            let at = event.Journal.t_us in
            let from = at - b.window_us in
            let window_events =
              List.filter
                (fun (e : Journal.event) ->
                  windowed e && e.Journal.t_us >= from && e.Journal.t_us <= at)
                session
            in
            let session_events =
              (* Journal order: everything recorded before the breach. *)
              let rec before acc = function
                | [] -> List.rev acc
                | e :: _ when e == event -> List.rev acc
                | e :: rest ->
                  before (if session_scope e then e :: acc else acc) rest
              in
              before [] session
            in
            Some
              {
                b_rule = b.rule;
                b_window = b.window;
                b_at_us = at;
                b_value_milli = b.value_milli;
                b_causes = rank window_events session_events;
                b_window_events = window_events;
                b_session_events = session_events;
              }
          | _ -> None)
        session)
    (sessions events)

let max_listed = 12

let pp_listed ppf events =
  let n = List.length events in
  List.iteri
    (fun i event ->
      if i < max_listed then Format.fprintf ppf "    %a@," pp_event event)
    events;
  if n > max_listed then
    Format.fprintf ppf "    ... and %d more@," (n - max_listed)

let pp_explain ppf explanations =
  let open Format in
  fprintf ppf "@[<v>";
  if explanations = [] then fprintf ppf "no SLO breaches recorded"
  else
    List.iteri
      (fun i e ->
        if i > 0 then fprintf ppf "@,";
        fprintf ppf "breach: %S -> %.6g in window %d @@ t=%.3fs@," e.b_rule
          (float_of_int e.b_value_milli /. 1000.)
          e.b_window (seconds e.b_at_us);
        if e.b_causes = [] then
          fprintf ppf "  no decision events near this breach@,"
        else begin
          fprintf ppf "  likely causes (score = 2x in-window + 1x session):@,";
          List.iteri
            (fun rank (label, score) ->
              fprintf ppf "    %d. %s (score %d)@," (rank + 1) label score)
            e.b_causes
        end;
        if e.b_window_events <> [] then begin
          fprintf ppf "  in the breached window:@,";
          pp_listed ppf e.b_window_events
        end;
        if e.b_session_events <> [] then begin
          fprintf ppf "  session-scope decisions before the breach:@,";
          pp_listed ppf e.b_session_events
        end)
      explanations;
  fprintf ppf "@]"
