module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0

  let incr ?(by = 1) t =
    if by > 0 && Control.on () then ignore (Atomic.fetch_and_add t by)

  let value = Atomic.get

  let reset t = Atomic.set t 0
end

module Gauge = struct
  type t = float Atomic.t

  let create () = Atomic.make 0.

  let set t v = if Control.on () then Atomic.set t v

  let rec add t v =
    if Control.on () then begin
      let prev = Atomic.get t in
      if not (Atomic.compare_and_set t prev (prev +. v)) then add t v
    end

  let value = Atomic.get

  let reset t = Atomic.set t 0.
end

(* Samples clamped by the histogram guard below, process-wide. The
   registry surfaces this as a synthetic [obs_dropped_samples_total]
   family, so bad clocks show up in every export instead of silently
   bending a bucket. *)
let dropped_samples = Atomic.make 0

let dropped_samples_total () = Atomic.get dropped_samples

let reset_dropped_samples () = Atomic.set dropped_samples 0

module Histogram = struct
  type t = {
    bounds : float array;  (* strictly increasing upper bounds *)
    counts : int Atomic.t array;  (* one per bound, plus overflow at the end *)
    total : int Atomic.t;
    sum : float Atomic.t;
    (* Quantile sketch, maintained only while monitoring is on. The
       sketch is not lock-free, so it gets its own mutex; the plain
       bucket path above stays atomic-only. *)
    sketch : Sketch.t;
    sketch_mutex : Mutex.t;
  }

  let create ~buckets =
    let n = Array.length buckets in
    if n = 0 then invalid_arg "Obs histogram: no buckets";
    for i = 1 to n - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Obs histogram: bucket bounds must be strictly increasing"
    done;
    {
      bounds = Array.copy buckets;
      counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      sum = Atomic.make 0.;
      sketch = Sketch.create ();
      sketch_mutex = Mutex.create ();
    }

  let rec add_sum t v =
    let prev = Atomic.get t.sum in
    if not (Atomic.compare_and_set t.sum prev (prev +. v)) then add_sum t v

  let bucket_index t v =
    (* Linear scan: bucket arrays are small (≤ ~12 bounds). *)
    let n = Array.length t.bounds in
    let rec find i = if i >= n || v <= t.bounds.(i) then i else find (i + 1) in
    find 0

  let observe t v =
    if Control.on () then begin
      (* Guard against clock skew and arithmetic accidents: a NaN or
         negative sample would land in an arbitrary bucket (NaN
         compares false everywhere, so it falls through to overflow)
         or drag [sum] below zero. Clamp to 0 and account the clamp. *)
      let v =
        if Float.is_nan v || v < 0. then begin
          ignore (Atomic.fetch_and_add dropped_samples 1);
          0.
        end
        else v
      in
      ignore (Atomic.fetch_and_add t.counts.(bucket_index t v) 1);
      ignore (Atomic.fetch_and_add t.total 1);
      add_sum t v;
      if Control.monitor_on () then begin
        Mutex.lock t.sketch_mutex;
        Sketch.observe t.sketch v;
        Mutex.unlock t.sketch_mutex
      end
    end

  let count t = Atomic.get t.total

  let sum t = Atomic.get t.sum

  let bucket_counts t =
    Array.mapi (fun i bound -> (bound, Atomic.get t.counts.(i))) t.bounds

  let overflow t = Atomic.get t.counts.(Array.length t.bounds)

  let bounds t = Array.copy t.bounds

  let quantile t q =
    Mutex.lock t.sketch_mutex;
    let result = Sketch.quantile t.sketch q in
    Mutex.unlock t.sketch_mutex;
    result

  let sketch_count t =
    Mutex.lock t.sketch_mutex;
    let n = Sketch.count t.sketch in
    Mutex.unlock t.sketch_mutex;
    n

  let reset t =
    Array.iter (fun c -> Atomic.set c 0) t.counts;
    Atomic.set t.total 0;
    Atomic.set t.sum 0.;
    Mutex.lock t.sketch_mutex;
    Sketch.reset t.sketch;
    Mutex.unlock t.sketch_mutex
end

let default_time_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |]

let default_fraction_buckets =
  [| 0.001; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0 |]
