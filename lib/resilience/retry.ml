(* Budgeted deterministic retry: the generalisation of the transport's
   NACK loop. Everything is costed on the simulated clock before it is
   spent, so a schedule never blows its deadline budget, and every
   quantity (backoff, per-round seed, jitter) is a pure function of the
   policy and the caller's seed — two runs of the same schedule are
   byte-identical. *)

type policy = {
  max_attempts : int;
  base_backoff_s : float;
  multiplier : float;
  jitter : float;
  budget_s : float;
}

(* The transport's historical constants: 16 rounds, 2 ms base backoff
   doubling each round, no jitter, a 40 ms deadline budget. *)
let default =
  {
    max_attempts = 16;
    base_backoff_s = 0.002;
    multiplier = 2.;
    jitter = 0.;
    budget_s = 0.04;
  }

type attempt = { round : int; seed : int; backoff_s : float }

type admission = Admit | Wait of float | Stop

type stats = {
  attempts : int;
  time_s : float;
  budget_exhausted : bool;
  denied : bool;
}

(* Distinct deterministic sub-stream per round, same derivation the
   NACK loop has always used (7919 is the 1000th prime). *)
let round_seed ~seed ~round = seed + ((round + 1) * 7919)

(* Jitter rides its own salt so enabling it never perturbs the fault
   injector's streams, which are keyed on the bare round seed. *)
let jitter_salt = 0x5bd1e995

let backoff_s policy ~seed ~round =
  let base =
    policy.base_backoff_s *. Float.pow policy.multiplier (float_of_int round)
  in
  if policy.jitter <= 0. || base <= 0. then base
  else
    let rng =
      Image.Prng.create ~seed:(round_seed ~seed ~round lxor jitter_salt)
    in
    base +. Image.Prng.float rng (policy.jitter *. base)

let obs_attempts =
  Obs.counter ~help:"Retry attempts executed by resilience schedules"
    "resilience_retry_attempts_total" []

let obs_exhausted =
  Obs.counter ~help:"Retry schedules that ran out of deadline budget"
    "resilience_retry_exhausted_total" []

let run ?(admit = fun _ ~now_s:_ _ -> Admit) policy ~seed ~init ~pending ~cost
    ~step =
  let spent = ref 0. in
  let attempts = ref 0 in
  let exhausted = ref false in
  let denied = ref false in
  let state = ref init in
  let finished = ref false in
  while not !finished do
    if not (pending !state) then finished := true
    else if !attempts >= policy.max_attempts then finished := true
    else begin
      let a =
        {
          round = !attempts;
          seed = round_seed ~seed ~round:!attempts;
          backoff_s = backoff_s policy ~seed ~round:!attempts;
        }
      in
      match admit a ~now_s:!spent !state with
      | Stop ->
        denied := true;
        finished := true
      | Wait w ->
        (* Waiting out a cooldown is simulated time like any other
           cost: it must fit the budget or the schedule is over. *)
        if w <= 0. then ()
        else if !spent +. w > policy.budget_s then begin
          exhausted := true;
          finished := true
        end
        else spent := !spent +. w
      | Admit ->
        let c = cost a !state in
        if !spent +. c > policy.budget_s then begin
          exhausted := true;
          finished := true
        end
        else begin
          spent := !spent +. c;
          incr attempts;
          Obs.Metrics.Counter.incr obs_attempts;
          state := step a ~now_s:!spent !state
        end
    end
  done;
  if !exhausted then Obs.Metrics.Counter.incr obs_exhausted;
  ( !state,
    {
      attempts = !attempts;
      time_s = !spent;
      budget_exhausted = !exhausted;
      denied = !denied;
    } )
