(** Budgeted deterministic retry with exponential backoff.

    The generalisation of the transport's NACK loop (DESIGN.md §14):
    a schedule of attempts where every attempt's backoff, random
    sub-stream and cost are pure functions of the policy and the
    caller's seed, and where an attempt only runs if its *full* cost
    still fits the deadline budget. Two runs of the same schedule are
    byte-identical; with the {!default} policy the schedule reproduces
    the historical [Transport.nack_retransmit] loop exactly. *)

type policy = {
  max_attempts : int;  (** hard cap on executed attempts *)
  base_backoff_s : float;  (** backoff before attempt 0 *)
  multiplier : float;  (** backoff growth per attempt (2 = doubling) *)
  jitter : float;
      (** extra backoff drawn uniformly from [0, jitter x backoff) with
          a seeded {!Image.Prng}; [0.] draws nothing at all, keeping
          jitter-free schedules byte-identical to the historical loop *)
  budget_s : float;  (** total simulated-time deadline budget *)
}

val default : policy
(** The transport's historical constants: 16 rounds, 2 ms base
    backoff doubling each round, no jitter, 40 ms budget. *)

type attempt = {
  round : int;  (** 0-based attempt index *)
  seed : int;  (** deterministic per-round sub-stream seed *)
  backoff_s : float;  (** backoff charged for this attempt *)
}

(** Admission verdict for one attempt, from the optional [admit]
    callback (how a {!Breaker} gates a schedule). *)
type admission =
  | Admit  (** run the attempt *)
  | Wait of float
      (** spend this much simulated time doing nothing (a breaker
          cooldown), then ask again; waiting past the budget exhausts
          the schedule like any other cost *)
  | Stop  (** abandon the schedule; reported as [denied] *)

type stats = {
  attempts : int;  (** attempts actually executed *)
  time_s : float;  (** simulated time spent, waits included *)
  budget_exhausted : bool;
      (** the next attempt (or wait) no longer fit the budget *)
  denied : bool;  (** the admission callback said {!Stop} *)
}

val round_seed : seed:int -> round:int -> int
(** [seed + (round + 1) * 7919] — the per-round sub-stream derivation
    the NACK loop has always used. *)

val backoff_s : policy -> seed:int -> round:int -> float
(** Backoff charged before attempt [round], jitter included. *)

val run :
  ?admit:(attempt -> now_s:float -> 's -> admission) ->
  policy ->
  seed:int ->
  init:'s ->
  pending:('s -> bool) ->
  cost:(attempt -> 's -> float) ->
  step:(attempt -> now_s:float -> 's -> 's) ->
  's * stats
(** [run policy ~seed ~init ~pending ~cost ~step] folds attempts over
    state ['s]: while [pending state] and attempts remain, ask [admit]
    (default: always {!Admit}), price the attempt with [cost] (which
    must return the attempt's full cost, backoff included — the
    attempt record carries [backoff_s] for that), and only if the cost
    fits the remaining budget charge it and run [step] with [now_s]
    the simulated time after the charge. The first unaffordable
    attempt sets [budget_exhausted] and ends the schedule. *)
