(* Text resilience profiles: the --resilience counterpart of the fault
   profile format. Same grammar ([key = value], # comments); the parse
   is deliberately lenient about *values* — a non-positive budget or a
   threshold outside [0,1] parses fine and is the offline verifier's
   business (V502/V504), while the runtime clamps before use — but
   strict about *shape*: unknown keys, bad numbers and unknown ladder
   rungs are errors (V501). *)

type t = {
  retry : Retry.policy option;
  breaker : Breaker.config option;
  bulkhead : Bulkhead.config option;
  ladder : Degrade.step list;  (* file order preserved for the verifier *)
  stage_deadline_s : float option;
}

let empty =
  {
    retry = None;
    breaker = None;
    bulkhead = None;
    ladder = [];
    stage_deadline_s = None;
  }

let is_noop t =
  t.retry = None && t.breaker = None && t.bulkhead = None && t.ladder = []
  && t.stage_deadline_s = None

exception Bad_profile of string

let parse text =
  let budget_s = ref None and base_s = ref None in
  let multiplier = ref None and jitter = ref None and max_rounds = ref None in
  let threshold = ref None and window = ref None and min_samples = ref None in
  let cooldown_ms = ref None and probes = ref None in
  let capacity = ref None and queue = ref None in
  let ladder = ref None in
  let stage_deadline_ms = ref None in
  let float_of what v =
    match float_of_string_opt (String.trim v) with
    | Some f -> f
    | None -> raise (Bad_profile (Printf.sprintf "%s: bad number %S" what v))
  in
  let int_of what v =
    match int_of_string_opt (String.trim v) with
    | Some i -> i
    | None -> raise (Bad_profile (Printf.sprintf "%s: bad integer %S" what v))
  in
  let ladder_of n v =
    List.map
      (fun s ->
        let s = String.trim s in
        match Degrade.of_label s with
        | Some step -> step
        | None ->
          raise
            (Bad_profile
               (Printf.sprintf
                  "line %d: unknown ladder step %S (fresh, stale, clamp, full)"
                  n s)))
      (String.split_on_char ',' v)
  in
  let handle_line n line =
    let body =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    if String.trim body <> "" then begin
      match String.index_opt body '=' with
      | None ->
        raise (Bad_profile (Printf.sprintf "line %d: expected key = value" n))
      | Some i ->
        let key = String.trim (String.sub body 0 i) in
        let value =
          String.trim (String.sub body (i + 1) (String.length body - i - 1))
        in
        (match key with
        | "retry_budget_s" -> budget_s := Some (float_of key value)
        | "retry_base_s" -> base_s := Some (float_of key value)
        | "retry_multiplier" -> multiplier := Some (float_of key value)
        | "retry_jitter" -> jitter := Some (float_of key value)
        | "retry_max_rounds" -> max_rounds := Some (int_of key value)
        | "breaker_threshold" -> threshold := Some (float_of key value)
        | "breaker_window" -> window := Some (int_of key value)
        | "breaker_min_samples" -> min_samples := Some (int_of key value)
        | "breaker_cooldown_ms" -> cooldown_ms := Some (float_of key value)
        | "breaker_probes" -> probes := Some (int_of key value)
        | "bulkhead_capacity" -> capacity := Some (int_of key value)
        | "bulkhead_queue" -> queue := Some (int_of key value)
        | "ladder" -> ladder := Some (ladder_of n value)
        | "stage_deadline_ms" -> stage_deadline_ms := Some (float_of key value)
        | other ->
          raise (Bad_profile (Printf.sprintf "line %d: unknown key %S" n other)))
    end
  in
  try
    List.iteri
      (fun i line -> handle_line (i + 1) line)
      (String.split_on_char '\n' text);
    let retry =
      if
        !budget_s = None && !base_s = None && !multiplier = None
        && !jitter = None && !max_rounds = None
      then None
      else
        Some
          {
            Retry.max_attempts =
              Option.value ~default:Retry.default.Retry.max_attempts !max_rounds;
            base_backoff_s =
              Option.value ~default:Retry.default.Retry.base_backoff_s !base_s;
            multiplier =
              Option.value ~default:Retry.default.Retry.multiplier !multiplier;
            jitter = Option.value ~default:Retry.default.Retry.jitter !jitter;
            budget_s =
              Option.value ~default:Retry.default.Retry.budget_s !budget_s;
          }
    in
    let breaker =
      if
        !threshold = None && !window = None && !min_samples = None
        && !cooldown_ms = None && !probes = None
      then None
      else
        Some
          {
            Breaker.failure_threshold =
              Option.value
                ~default:Breaker.default_config.Breaker.failure_threshold
                !threshold;
            window =
              Option.value ~default:Breaker.default_config.Breaker.window
                !window;
            min_samples =
              Option.value ~default:Breaker.default_config.Breaker.min_samples
                !min_samples;
            cooldown_s =
              (match !cooldown_ms with
              | Some ms -> ms /. 1000.
              | None -> Breaker.default_config.Breaker.cooldown_s);
            probe_quota =
              Option.value ~default:Breaker.default_config.Breaker.probe_quota
                !probes;
          }
    in
    let bulkhead =
      if !capacity = None && !queue = None then None
      else
        Some
          {
            Bulkhead.capacity =
              Option.value ~default:Bulkhead.default_config.Bulkhead.capacity
                !capacity;
            queue_limit =
              Option.value ~default:Bulkhead.default_config.Bulkhead.queue_limit
                !queue;
          }
    in
    Ok
      {
        retry;
        breaker;
        bulkhead;
        ladder = Option.value ~default:[] !ladder;
        stage_deadline_s =
          Option.map (fun ms -> ms /. 1000.) !stage_deadline_ms;
      }
  with Bad_profile msg -> Error msg

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let pp ppf t =
  let open Format in
  if is_noop t then pp_print_string ppf "no-op"
  else begin
    let first = ref true in
    let sep () =
      if !first then first := false else pp_print_string ppf ", "
    in
    (match t.retry with
    | Some r ->
      sep ();
      fprintf ppf "retry(budget %.0f ms, base %.1f ms x%g, %d rounds%s)"
        (1000. *. r.Retry.budget_s)
        (1000. *. r.Retry.base_backoff_s)
        r.Retry.multiplier r.Retry.max_attempts
        (if r.Retry.jitter > 0. then
           Printf.sprintf ", jitter %g" r.Retry.jitter
         else "")
    | None -> ());
    (match t.breaker with
    | Some b ->
      sep ();
      fprintf ppf "breaker(%.0f%% over %d, cooldown %.0f ms, %d probes)"
        (100. *. b.Breaker.failure_threshold)
        b.Breaker.window
        (1000. *. b.Breaker.cooldown_s)
        b.Breaker.probe_quota
    | None -> ());
    (match t.bulkhead with
    | Some b ->
      sep ();
      fprintf ppf "bulkhead(%d + queue %d)" b.Bulkhead.capacity
        b.Bulkhead.queue_limit
    | None -> ());
    (match t.ladder with
    | [] -> ()
    | steps ->
      sep ();
      fprintf ppf "ladder(%s)"
        (String.concat " -> " (List.map Degrade.label steps)));
    match t.stage_deadline_s with
    | Some d ->
      sep ();
      fprintf ppf "stage deadline %.0f ms" (1000. *. d)
    | None -> ()
  end
