(** Text resilience profiles ([--resilience FILE], extension
    [.resilience]).

    Same grammar as fault profiles: one [key = value] per line, [#]
    comments. Keys, all optional, grouped by the component they
    configure (a group is instantiated when any of its keys appears):

    {v
    # retry schedule (Transport NACK loop)
    retry_budget_s      = 0.04     # deadline budget, seconds
    retry_base_s        = 0.002    # base backoff, seconds
    retry_multiplier    = 2.0      # backoff growth per round
    retry_jitter        = 0.0      # extra backoff fraction, seeded
    retry_max_rounds    = 16
    # circuit breaker (per-round repair outcomes)
    breaker_threshold   = 0.5      # failure rate in [0, 1]
    breaker_window      = 8        # outcomes per sliding window
    breaker_min_samples = 4
    breaker_cooldown_ms = 10
    breaker_probes      = 2
    # bulkhead (server prepared-stream cache fill)
    bulkhead_capacity   = 2
    bulkhead_queue      = 2
    # degradation ladder, shallowest first
    ladder              = fresh, stale, clamp, full
    # transmit-stage watchdog
    stage_deadline_ms   = 40
    v}

    The parse is lenient about values — non-positive budgets,
    thresholds outside [0,1] and mis-ordered ladders parse fine and
    are the offline verifier's business (V502–V504); the runtime
    clamps ({!Breaker.clamp}, {!Bulkhead.clamp}, {!Degrade.create})
    before use — but strict about shape: unknown keys, bad numbers and
    unknown ladder rungs are [Error] (V501). *)

type t = {
  retry : Retry.policy option;
  breaker : Breaker.config option;
  bulkhead : Bulkhead.config option;
  ladder : Degrade.step list;
      (** rungs in file order, unclamped — empty when the key is
          absent (meaning: the full default ladder) *)
  stage_deadline_s : float option;
}

val empty : t
(** Everything absent — a no-op profile. *)

val is_noop : t -> bool
(** No component configured (V505 warns on such a profile). *)

val parse : string -> (t, string) result

val load : path:string -> (t, string) result
(** [parse] on a file's contents; I/O errors become [Error]. *)

val pp : Format.formatter -> t -> unit
