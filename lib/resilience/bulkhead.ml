(* Bulkhead: a concurrency compartment with an explicit queue and an
   explicit shed decision. The server's prepared-stream cache fill
   runs inside one so a burst of expensive annotation builds cannot
   starve everything else — excess work queues up to a limit and is
   shed (to the degradation ladder) beyond it, and every decision is
   counted and journaled rather than implied by lock contention. *)

type config = { capacity : int; queue_limit : int }

let default_config = { capacity = 2; queue_limit = 2 }

let clamp (c : config) =
  { capacity = max 1 c.capacity; queue_limit = max 0 c.queue_limit }

type decision = Admitted | Queued | Shed

let decision_label = function
  | Admitted -> "admitted"
  | Queued -> "queued"
  | Shed -> "shed"

let decision_code = function Admitted -> 0 | Queued -> 1 | Shed -> 2

type t = {
  name : string;
  config : config;
  lock : Mutex.t;
  can_enter : Condition.t;
  mutable in_flight : int;  (* guarded_by: lock *)
  mutable waiting : int;  (* guarded_by: lock *)
  mutable admitted_total : int;  (* guarded_by: lock *)
  mutable queued_total : int;  (* guarded_by: lock *)
  mutable shed_total : int;  (* guarded_by: lock *)
}

let obs_decisions =
  let family d =
    Obs.counter ~help:"Bulkhead admission decisions"
      "resilience_bulkhead_decisions_total"
      [ ("decision", decision_label d) ]
  in
  let admitted = family Admitted
  and queued = family Queued
  and shed = family Shed in
  function Admitted -> admitted | Queued -> queued | Shed -> shed

let create ?(config = default_config) ~name () =
  {
    name;
    config = clamp config;
    lock = Mutex.create ();
    can_enter = Condition.create ();
    in_flight = 0;
    waiting = 0;
    admitted_total = 0;
    queued_total = 0;
    shed_total = 0;
  }

let name t = t.name

let config t = t.config

(* Bulkhead decisions are journaled at t=0 in the session-start phase:
   admission happens before any simulated clock is running, and a
   fixed phase/timestamp keeps repeated server fills from perturbing
   the per-phase monotonicity audit (V406) of whatever stage runs
   next. *)
(* The counter values travel as plain arguments: the caller snapshots
   them inside its locked region, and this function touches no
   guarded state itself. *)
let journal t decision ~in_flight ~queued =
  Obs.Metrics.Counter.incr (obs_decisions decision);
  Obs.Journal.record
    (Obs.Journal.Bulkhead_decision
       { name = t.name; decision = decision_label decision; in_flight; queued })

type outcome = { decision : decision; queued_behind : int }

(* Decide under the lock; block only for Queued. Sequential callers —
   every deterministic test and chaos path — see a pure function of
   the call sequence: below capacity admit, below queue_limit queue,
   otherwise shed. Under a domain pool the counts depend on scheduling
   and only the *totals* are meaningful; the journal stays
   deterministic because sequential paths are the only journaled
   ones that assert byte-equality. *)
let enter t =
  Mutex.lock t.lock;
  let outcome =
    if t.in_flight < t.config.capacity then begin
      t.in_flight <- t.in_flight + 1;
      t.admitted_total <- t.admitted_total + 1;
      (* lint: allow C004 journaling the decision inside the admission
         region is the design: the journal mutex is a leaf lock, never
         held while taking this one *)
      journal t Admitted ~in_flight:t.in_flight ~queued:t.waiting;
      { decision = Admitted; queued_behind = 0 }
    end
    else if t.waiting < t.config.queue_limit then begin
      t.waiting <- t.waiting + 1;
      t.queued_total <- t.queued_total + 1;
      let behind = t.waiting in
      journal t Queued ~in_flight:t.in_flight ~queued:t.waiting;
      while t.in_flight >= t.config.capacity do
        Condition.wait t.can_enter t.lock
      done;
      t.waiting <- t.waiting - 1;
      t.in_flight <- t.in_flight + 1;
      { decision = Queued; queued_behind = behind }
    end
    else begin
      t.shed_total <- t.shed_total + 1;
      journal t Shed ~in_flight:t.in_flight ~queued:t.waiting;
      { decision = Shed; queued_behind = t.waiting }
    end
  in
  Mutex.unlock t.lock;
  outcome

let release t =
  Mutex.lock t.lock;
  t.in_flight <- max 0 (t.in_flight - 1);
  Condition.signal t.can_enter;
  Mutex.unlock t.lock

let run t ~shed f =
  let outcome = enter t in
  match outcome.decision with
  | Shed -> shed ()
  | Admitted | Queued -> Fun.protect ~finally:(fun () -> release t) f

let stats t =
  Mutex.lock t.lock;
  let s = (t.admitted_total, t.queued_total, t.shed_total) in
  Mutex.unlock t.lock;
  s
