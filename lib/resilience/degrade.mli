(** Graceful-degradation ladder.

    The explicit fallback order the streaming client walks when fresh
    annotations cannot be had (DESIGN.md §14):

    {v
    fresh ──► stale ──► clamp ──► full
      0         1          2        3
    v}

    fresh annotation → stale cached annotation (another quality of the
    same clip from {!Streaming.Server}'s prepared cache) →
    neighbour-clamped per-scene reconstruction → full-backlight
    passthrough, the rung that cannot fail. Every non-fresh step taken
    is journaled as {!Obs.Journal.Ladder_step} and counted in
    [resilience_ladder_steps_total]; the deepest rung reached feeds
    the [ladder_depth] monitor series SLO rules gate on. *)

type step = Fresh | Stale_cache | Neighbour_clamp | Full_backlight

val rank : step -> int
(** 0–3 in ladder order; also the [depth] journaled per step. *)

val label : step -> string
(** ["fresh"] / ["stale"] / ["clamp"] / ["full"] — the profile-grammar
    and journal spelling. *)

val of_label : string -> step option

val all : step list
(** Every rung, shallowest first. *)

val default_steps : step list
(** The full ladder. *)

type t

val create : ?steps:step list -> unit -> t
(** A ladder offering [steps] (default: all). [Fresh] and
    [Full_backlight] are always present — the walk needs a start and a
    rung that cannot fail — and the list is sorted and deduplicated;
    a mis-ordered profile is the offline verifier's business (V503). *)

val steps : t -> step list

val enabled : t -> step -> bool

val next_step : t -> from:step -> step
(** Shallowest enabled rung no shallower than [from] — where the walk
    lands when it asks for [from] but the profile disabled it.
    [Full_backlight] when nothing else matches. *)

val note : t -> ?t_s:float -> scene:int -> step -> unit
(** Record that [scene] (-1: the whole track) resolved at [step].
    Non-fresh steps are journaled and counted; every step updates the
    [ladder_depth] gauge with the deepest rank so far. *)

val depth : t -> int
(** Deepest rank reached so far (0 if only fresh). *)

val taken : t -> (step * int) list
(** Per-rung counts of steps noted, shallowest first, zero entries
    omitted. *)
