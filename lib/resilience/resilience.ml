(* lint: allow L006 umbrella namespace of aliases; contracts live in the member .mlis *)
(* Umbrella module: the resilience control plane.

   Deterministic failure handling for the streaming stack, all on the
   simulated clock: budgeted retry schedules, circuit breakers,
   bulkheads, and the graceful-degradation ladder. Nothing in here
   reads ambient time or randomness — callers pass seeds and [now_s] —
   so every decision (a breaker trip, a shed, a fallback rung) is a
   pure function of the run's inputs, journaled and reproducible. *)

module Retry = Retry
module Breaker = Breaker
module Bulkhead = Bulkhead
module Degrade = Degrade
module Profile = Profile
