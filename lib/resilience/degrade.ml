(* The graceful-degradation ladder: an ordered list of fallbacks the
   client walks when fresh annotations cannot be had. Every non-fresh
   step is journaled and counted — a fallback is a decision, not an
   accident — and the deepest rung reached feeds the [ladder_depth]
   monitor series that SLO rules gate on. *)

type step = Fresh | Stale_cache | Neighbour_clamp | Full_backlight

let rank = function
  | Fresh -> 0
  | Stale_cache -> 1
  | Neighbour_clamp -> 2
  | Full_backlight -> 3

let label = function
  | Fresh -> "fresh"
  | Stale_cache -> "stale"
  | Neighbour_clamp -> "clamp"
  | Full_backlight -> "full"

let of_label = function
  | "fresh" -> Some Fresh
  | "stale" -> Some Stale_cache
  | "clamp" -> Some Neighbour_clamp
  | "full" -> Some Full_backlight
  | _ -> None

let all = [ Fresh; Stale_cache; Neighbour_clamp; Full_backlight ]

let default_steps = all

type t = {
  steps : step list;  (* sorted by rank, deduplicated *)
  mutable max_depth : int;
      (* owned_by: the session control plane, single-threaded (L012
         gates every mutator) *)
  counts : int array;  (* indexed by rank *)
}

let obs_steps =
  let family s =
    Obs.counter ~help:"Degradation-ladder steps taken"
      "resilience_ladder_steps_total"
      [ ("step", label s) ]
  in
  let handles = List.map (fun s -> (rank s, family s)) all in
  fun s -> List.assoc (rank s) handles

let s_ladder_depth = Obs.Monitor.declare_series "ladder_depth"

let create ?(steps = default_steps) () =
  (* The runtime always has a floor to stand on: Fresh is where every
     scene starts, Full_backlight is the rung that cannot fail. A
     profile listing rungs out of order is the verifier's business
     (V503); here we sort and deduplicate. *)
  let steps =
    List.sort_uniq (fun a b -> compare (rank a) (rank b))
      (Fresh :: Full_backlight :: steps)
  in
  { steps; max_depth = 0; counts = Array.make 4 0 }

let steps t = t.steps

let enabled t step = List.exists (fun s -> rank s = rank step) t.steps

(* First enabled rung at or below (i.e. no shallower than) [from]. *)
let next_step t ~from =
  let r = rank from in
  match List.find_opt (fun s -> rank s >= r) t.steps with
  | Some s -> s
  | None -> Full_backlight

let note t ?(t_s = 0.) ~scene step =
  let r = rank step in
  t.counts.(r) <- t.counts.(r) + 1;
  if r > t.max_depth then t.max_depth <- r;
  Obs.Monitor.gauge s_ladder_depth (float_of_int t.max_depth);
  if r > 0 then begin
    Obs.Metrics.Counter.incr (obs_steps step);
    Obs.Journal.record ~t_s
      (Obs.Journal.Ladder_step { scene; depth = r; step = label step })
  end

let depth t = t.max_depth

let taken t =
  List.filter_map
    (fun s ->
      let n = t.counts.(rank s) in
      if n > 0 then Some (s, n) else None)
    all
