(** Closed / open / half-open circuit breaker on the simulated clock.

    Outcome rates are measured over a sliding {!Obs.Window} of recent
    samples; when the failure rate over at least [min_samples]
    outcomes reaches [failure_threshold] the breaker opens, rejects
    work for [cooldown_s] of simulated time, then half-opens and
    admits exactly [probe_quota] probes: one probe failure reopens it,
    a full quota of successes closes it. Callers pass [now_s]
    everywhere — no ambient time — so equal seeds give equal
    transition sequences, each journaled as a
    {!Obs.Journal.Breaker_transition} event and mirrored into the
    [breaker_state] monitor series (0 closed, 1 half-open, 2 open). *)

type state = Closed | Half_open | Open

val state_code : state -> int
(** 0 / 1 / 2 in declaration order — the value SLO rules and journal
    events carry. *)

val state_label : state -> string
(** ["closed"], ["half_open"], ["open"]. *)

type config = {
  failure_threshold : float;  (** open at this failure rate, in [0,1] *)
  window : int;  (** outcomes per sliding window *)
  min_samples : int;  (** outcomes required before evaluating *)
  cooldown_s : float;  (** open -> half-open delay, simulated seconds *)
  probe_quota : int;  (** probes admitted while half-open *)
}

val default_config : config
(** 50% over a window of 8 (min 4 samples), 10 ms cooldown, 2 probes. *)

val clamp : config -> config
(** The sanitisation {!create} applies: threshold into [0,1], counts
    at least 1, [min_samples <= window], non-negative cooldown. The
    offline verifier (V502/V504) reports out-of-range profile values;
    the runtime clamps them so a bad profile cannot wedge the state
    machine. *)

type transition = {
  at_s : float;
  from_state : state;
  to_state : state;
  failure_permille : int;  (** windowed failure rate when it fired *)
}

type t

val create : ?config:config -> name:string -> unit -> t
(** A fresh breaker in {!Closed} with an empty window. [config] is
    passed through {!clamp}. *)

val name : t -> string

val state : t -> state

val allow : t -> now_s:float -> bool
(** May a unit of work proceed at [now_s]? Closed: always. Open: no,
    until [cooldown_s] has elapsed — at which point the breaker
    half-opens and this call admits the first probe. Half-open: yes
    for the remaining probe quota, no after. Rejections count into
    [resilience_breaker_rejected_total]. *)

val record : t -> now_s:float -> ok:bool -> unit
(** Report the outcome of admitted work. Ignored while {!Open} (the
    breaker admitted nothing). Half-open: a failure reopens, a full
    probe quota of successes closes. Closed: the outcome enters the
    sliding window and may trip the breaker open. *)

val cooldown_remaining : t -> now_s:float -> float option
(** [Some remaining] while {!Open} (0 once the cooldown has elapsed),
    [None] otherwise — what a retry schedule waits out before its next
    admission attempt. *)

val failure_permille : t -> int
(** Current open-window failure rate, x1000. *)

val transitions : t -> transition list
(** Every transition so far, oldest first — the deterministic record
    the QCheck state-machine property and the tests compare. *)
