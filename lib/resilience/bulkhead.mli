(** Bulkhead: a named concurrency compartment with an explicit queue
    and an explicit shed decision.

    At most [capacity] units of work run at once; up to [queue_limit]
    more wait; anything beyond is {e shed} — refused immediately so
    the caller can fall back down the degradation ladder instead of
    piling onto a saturated stage. Every decision is counted in
    [resilience_bulkhead_decisions_total] and journaled as
    {!Obs.Journal.Bulkhead_decision}. Sequential callers (all the
    deterministic test and chaos paths) see decisions as a pure
    function of the call sequence; under a domain pool only the totals
    are schedule-independent. *)

type config = { capacity : int; queue_limit : int }

val default_config : config
(** Capacity 2, queue limit 2. *)

val clamp : config -> config
(** Capacity at least 1, queue limit at least 0 — applied by
    {!create}. *)

type decision = Admitted | Queued | Shed

val decision_label : decision -> string
(** ["admitted"] / ["queued"] / ["shed"]. *)

val decision_code : decision -> int
(** 0 / 1 / 2 in declaration order. *)

type t

val create : ?config:config -> name:string -> unit -> t

val name : t -> string

val config : t -> config
(** The clamped configuration in force. *)

type outcome = {
  decision : decision;
  queued_behind : int;  (** queue length observed when queued or shed *)
}

val enter : t -> outcome
(** Take a slot: admitted below capacity, queued (blocking until a
    slot frees) below the queue limit, shed otherwise. A shed outcome
    holds no slot — do not {!release} it. *)

val release : t -> unit
(** Return a slot taken by an admitted or queued {!enter}. *)

val run : t -> shed:(unit -> 'a) -> (unit -> 'a) -> 'a
(** [run t ~shed f] brackets [f] with {!enter}/{!release}, calling
    [shed] instead when the compartment refuses the work. *)

val stats : t -> int * int * int
(** Lifetime (admitted, queued, shed) totals. *)
