(* Closed / Open / Half-open circuit breaker on the simulated clock.
   Failure rates are measured over an Obs.Window of recent outcomes;
   every transition is journaled and counted, so a breaker trip is a
   first-class, reproducible decision rather than an emergent hiccup.
   Nothing here reads ambient time — callers pass [now_s] — which is
   what makes equal seeds give equal transition sequences. *)

type state = Closed | Half_open | Open

let state_code = function Closed -> 0 | Half_open -> 1 | Open -> 2

let state_label = function
  | Closed -> "closed"
  | Half_open -> "half_open"
  | Open -> "open"

type config = {
  failure_threshold : float;
  window : int;
  min_samples : int;
  cooldown_s : float;
  probe_quota : int;
}

let default_config =
  {
    failure_threshold = 0.5;
    window = 8;
    min_samples = 4;
    cooldown_s = 0.01;
    probe_quota = 2;
  }

(* Runtime never trusts a parsed profile blindly: the offline verifier
   (V502/V504) reports nonsense, the runtime clamps it into something
   that cannot wedge the state machine. *)
let clamp (c : config) =
  let window = max 1 c.window in
  {
    failure_threshold = Float.min 1. (Float.max 0. c.failure_threshold);
    window;
    min_samples = min window (max 1 c.min_samples);
    cooldown_s = Float.max 0. c.cooldown_s;
    probe_quota = max 1 c.probe_quota;
  }

type transition = {
  at_s : float;
  from_state : state;
  to_state : state;
  failure_permille : int;
}

type t = {
  name : string;
  config : config;
  failures : Obs.Window.t;  (* open accumulation = failures this window *)
  mutable seen : int;  (* owned_by: the session control plane, single-threaded (L012 gates every mutator) *)
  mutable window_started_s : float;  (* owned_by: session control plane *)
  mutable state : state;  (* owned_by: session control plane *)
  mutable opened_at_s : float;  (* owned_by: session control plane *)
  mutable probes_issued : int;  (* owned_by: session control plane *)
  mutable probes_ok : int;  (* owned_by: session control plane *)
  mutable transitions : transition list;  (* owned_by: session control plane; newest first *)
}

let obs_transitions =
  let family st =
    Obs.counter ~help:"Circuit-breaker state transitions"
      "resilience_breaker_transitions_total"
      [ ("to", state_label st) ]
  in
  let closed = family Closed
  and half_open = family Half_open
  and opened = family Open in
  function Closed -> closed | Half_open -> half_open | Open -> opened

let obs_rejected =
  Obs.counter ~help:"Attempts rejected by an open or probing breaker"
    "resilience_breaker_rejected_total" []

let s_breaker_state = Obs.Monitor.declare_series "breaker_state"

let create ?(config = default_config) ~name () =
  {
    name;
    config = clamp config;
    failures = Obs.Window.create ~history:16 ();
    seen = 0;
    window_started_s = 0.;
    state = Closed;
    opened_at_s = 0.;
    probes_issued = 0;
    probes_ok = 0;
    transitions = [];
  }

let state t = t.state

let name t = t.name

let transitions t = List.rev t.transitions

let failure_permille t =
  if t.seen = 0 then 0
  else
    int_of_float
      (Float.round (1000. *. Obs.Window.current t.failures /. float_of_int t.seen))

let transition t ~now_s to_state =
  let tr =
    {
      at_s = now_s;
      from_state = t.state;
      to_state;
      failure_permille = failure_permille t;
    }
  in
  t.transitions <- tr :: t.transitions;
  Obs.Metrics.Counter.incr (obs_transitions to_state);
  Obs.Monitor.gauge s_breaker_state (float_of_int (state_code to_state));
  Obs.Journal.record ~t_s:now_s
    (Obs.Journal.Breaker_transition
       {
         name = t.name;
         from_state = state_code t.state;
         to_state = state_code to_state;
         failure_permille = tr.failure_permille;
       });
  t.state <- to_state;
  (match to_state with
  | Open ->
    t.opened_at_s <- now_s;
    t.probes_issued <- 0;
    t.probes_ok <- 0
  | Half_open ->
    t.probes_issued <- 0;
    t.probes_ok <- 0
  | Closed ->
    (* Fresh window: the breaker forgets the incident it just
       survived instead of instantly re-tripping on stale samples. *)
    if t.seen > 0 then begin
      ignore
        (Obs.Window.close t.failures ~index:(Obs.Window.closed_count t.failures)
           ~start_s:t.window_started_s
           ~duration_s:(Float.max 1e-9 (now_s -. t.window_started_s)));
      t.seen <- 0;
      t.window_started_s <- now_s
    end)

let cooldown_remaining t ~now_s =
  match t.state with
  | Open -> Some (Float.max 0. (t.opened_at_s +. t.config.cooldown_s -. now_s))
  | Closed | Half_open -> None

let allow t ~now_s =
  match t.state with
  | Closed -> true
  | Open ->
    if now_s -. t.opened_at_s >= t.config.cooldown_s then begin
      transition t ~now_s Half_open;
      t.probes_issued <- 1;
      true
    end
    else begin
      Obs.Metrics.Counter.incr obs_rejected;
      false
    end
  | Half_open ->
    if t.probes_issued < t.config.probe_quota then begin
      t.probes_issued <- t.probes_issued + 1;
      true
    end
    else begin
      Obs.Metrics.Counter.incr obs_rejected;
      false
    end

let record t ~now_s ~ok =
  match t.state with
  | Open -> ()  (* nothing was admitted; nothing to learn *)
  | Half_open ->
    if not ok then transition t ~now_s Open
    else begin
      t.probes_ok <- t.probes_ok + 1;
      if t.probes_ok >= t.config.probe_quota then transition t ~now_s Closed
    end
  | Closed ->
    if t.seen = 0 then t.window_started_s <- now_s;
    t.seen <- t.seen + 1;
    Obs.Window.add t.failures (if ok then 0. else 1.);
    let rate = Obs.Window.current t.failures /. float_of_int t.seen in
    if t.seen >= t.config.min_samples && rate >= t.config.failure_threshold
    then transition t ~now_s Open
    else if t.seen >= t.config.window then begin
      (* Rotate the sliding window so ancient outcomes age out. *)
      ignore
        (Obs.Window.close t.failures ~index:(Obs.Window.closed_count t.failures)
           ~start_s:t.window_started_s
           ~duration_s:(Float.max 1e-9 (now_s -. t.window_started_s)));
      t.seen <- 0;
      t.window_started_s <- now_s
    end
