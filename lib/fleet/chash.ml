(* FNV-1a, 64-bit, finished with a full avalanche mix: tiny,
   allocation-free and stable across runs and platforms — the ring
   must hash a clip name to the same point on every host or the shard
   assignment (and with it every per-shard journal) would stop being
   reproducible. The finalizer matters: catalog names and vnode labels
   differ only in a few trailing characters, and raw FNV leaves such
   inputs clustered on the ring (measured: a 4-shard ring where one
   shard owned 3% of 10k keys and another 43%). *)
let fnv64 key =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 1099511628211L)
    key;
  let mix h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h (-49064778989728563L) (* 0xff51afd7ed558ccd *) in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h (-4265267296055464877L) (* 0xc4ceb9fe1a85ec53 *) in
    Int64.logxor h (Int64.shift_right_logical h 33)
  in
  mix !h

type t = { points : (int64 * int) array; shards : int }

let shards t = t.shards

let vnode_point shard replica =
  fnv64 (Printf.sprintf "shard-%d-vnode-%d" shard replica)

let create ?(vnodes = 64) ~shards () =
  if shards < 1 then invalid_arg "Fleet.Chash.create: shards must be >= 1";
  if vnodes < 1 then invalid_arg "Fleet.Chash.create: vnodes must be >= 1";
  let points = Array.make (shards * vnodes) (0L, 0) in
  for s = 0 to shards - 1 do
    for r = 0 to vnodes - 1 do
      points.((s * vnodes) + r) <- (vnode_point s r, s)
    done
  done;
  (* Hash collisions between virtual nodes are broken by shard id, so
     the ring layout never depends on sort stability. *)
  Array.sort
    (fun (h1, s1) (h2, s2) ->
      match Int64.unsigned_compare h1 h2 with 0 -> compare s1 s2 | c -> c)
    points;
  { points; shards }

let lookup t key =
  let h = fnv64 key in
  let n = Array.length t.points in
  (* First ring point at or past the key's hash, wrapping to the
     start of the ring — the classic successor rule. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let p, _ = t.points.(mid) in
    if Int64.unsigned_compare p h < 0 then lo := mid + 1 else hi := mid
  done;
  let idx = if !lo = n then 0 else !lo in
  snd t.points.(idx)
