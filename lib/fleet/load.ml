type arrival = Open_loop | Closed_loop

type t = {
  arrival : arrival;
  sessions : int;
  rate_per_s : float;
  concurrency : int;
  zipf_s : float;
  diurnal_amplitude : float;
  diurnal_period_s : float;
  spike_at_s : float option;
  spike_factor : float;
  spike_width_s : float;
  seed : int;
}

let default =
  {
    arrival = Open_loop;
    sessions = 1000;
    rate_per_s = 100.;
    concurrency = 32;
    zipf_s = 1.1;
    diurnal_amplitude = 0.;
    diurnal_period_s = 86400.;
    spike_at_s = None;
    spike_factor = 1.;
    spike_width_s = 0.;
    seed = 7;
  }

exception Bad_profile of string

let validate t =
  if t.sessions < 1 then raise (Bad_profile "sessions must be >= 1");
  if not (t.rate_per_s > 0.) then raise (Bad_profile "rate_per_s must be > 0");
  if t.concurrency < 1 then raise (Bad_profile "concurrency must be >= 1");
  if not (t.zipf_s >= 0.) then raise (Bad_profile "zipf_s must be >= 0");
  if not (t.diurnal_amplitude >= 0. && t.diurnal_amplitude < 1.) then
    raise (Bad_profile "diurnal_amplitude must be in [0, 1)");
  if not (t.diurnal_period_s > 0.) then
    raise (Bad_profile "diurnal_period_s must be > 0");
  if not (t.spike_factor > 0.) then
    raise (Bad_profile "spike_factor must be > 0");
  if not (t.spike_width_s >= 0.) then
    raise (Bad_profile "spike_width_s must be >= 0");
  (match t.spike_at_s with
  | Some at when not (at >= 0.) -> raise (Bad_profile "spike_at_s must be >= 0")
  | _ -> ());
  t

let parse text =
  let p = ref default in
  let float_of what v =
    match float_of_string_opt (String.trim v) with
    | Some f -> f
    | None -> raise (Bad_profile (Printf.sprintf "%s: bad number %S" what v))
  in
  let int_of what v =
    match int_of_string_opt (String.trim v) with
    | Some i -> i
    | None -> raise (Bad_profile (Printf.sprintf "%s: bad integer %S" what v))
  in
  let handle_line n line =
    let body =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    if String.trim body <> "" then begin
      match String.index_opt body '=' with
      | None ->
        raise (Bad_profile (Printf.sprintf "line %d: expected key = value" n))
      | Some i ->
        let key = String.trim (String.sub body 0 i) in
        let value =
          String.trim (String.sub body (i + 1) (String.length body - i - 1))
        in
        (match key with
        | "arrival" -> (
          match String.lowercase_ascii value with
          | "open" -> p := { !p with arrival = Open_loop }
          | "closed" -> p := { !p with arrival = Closed_loop }
          | other ->
            raise
              (Bad_profile
                 (Printf.sprintf "line %d: unknown arrival %S (open, closed)" n
                    other)))
        | "sessions" -> p := { !p with sessions = int_of key value }
        | "rate_per_s" -> p := { !p with rate_per_s = float_of key value }
        | "concurrency" -> p := { !p with concurrency = int_of key value }
        | "zipf_s" -> p := { !p with zipf_s = float_of key value }
        | "diurnal_amplitude" ->
          p := { !p with diurnal_amplitude = float_of key value }
        | "diurnal_period_s" ->
          p := { !p with diurnal_period_s = float_of key value }
        | "spike_at_s" -> p := { !p with spike_at_s = Some (float_of key value) }
        | "spike_factor" -> p := { !p with spike_factor = float_of key value }
        | "spike_width_s" ->
          p := { !p with spike_width_s = float_of key value }
        | "seed" -> p := { !p with seed = int_of key value }
        | other ->
          raise (Bad_profile (Printf.sprintf "line %d: unknown key %S" n other)))
    end
  in
  try
    List.iteri
      (fun i line -> handle_line (i + 1) line)
      (String.split_on_char '\n' text);
    Ok (validate !p)
  with Bad_profile msg -> Error msg

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

(* Instantaneous arrival rate: the configured mean, modulated by the
   diurnal sine and the flash-crowd window. Floored well above zero so
   a deep diurnal trough can only stretch interarrival gaps, never
   stall the generator. *)
let rate_at t now_s =
  let diurnal =
    1.
    +. t.diurnal_amplitude
       *. sin (2. *. Float.pi *. now_s /. t.diurnal_period_s)
  in
  let spike =
    match t.spike_at_s with
    | Some at
      when now_s >= at -. (t.spike_width_s /. 2.)
           && now_s <= at +. (t.spike_width_s /. 2.) ->
      t.spike_factor
    | _ -> 1.
  in
  Float.max 1e-6 (t.rate_per_s *. diurnal *. spike)

type plan = { clip_of : int array; arrival_s : float array }

(* Distinct deterministic streams per concern (same idiom as
   Fault): changing the arrival process never changes which clip a
   session plays, so shard ownership is stable across load shapes. *)
let salt_clip = 0x3c6ef
let salt_arrival = 0x1b873

let plan t ~catalog =
  if catalog < 1 then invalid_arg "Fleet.Load.plan: catalog must be >= 1";
  (* Zipf(s) over catalog ranks by inverse CDF: rank k gets weight
     1 / (k + 1)^s, so rank 0 is the head of the popularity curve. *)
  let cumulative = Array.make catalog 0. in
  let total = ref 0. in
  for k = 0 to catalog - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (k + 1)) t.zipf_s);
    cumulative.(k) <- !total
  done;
  let pick_clip u =
    let target = u *. !total in
    let lo = ref 0 and hi = ref (catalog - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) < target then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let r_clip = Image.Prng.create ~seed:((t.seed * 0x2545f49) lxor salt_clip) in
  let clip_of =
    Array.init t.sessions (fun _ -> pick_clip (Image.Prng.float r_clip 1.))
  in
  let arrival_s =
    match t.arrival with
    | Closed_loop ->
      (* The scheduler starts closed-loop sessions as slots free up;
         there is no exogenous arrival time. *)
      Array.make t.sessions 0.
    | Open_loop ->
      let r =
        Image.Prng.create ~seed:((t.seed * 0x2545f49) lxor salt_arrival)
      in
      let now = ref 0. in
      Array.init t.sessions (fun _ ->
          let u = Float.max (Image.Prng.float r 1.) 1e-12 in
          now := !now +. (-.log u /. rate_at t !now);
          !now)
  in
  { clip_of; arrival_s }

let pp ppf t =
  let open Format in
  fprintf ppf "%s loop, %d sessions"
    (match t.arrival with Open_loop -> "open" | Closed_loop -> "closed")
    t.sessions;
  (match t.arrival with
  | Open_loop -> fprintf ppf ", %.1f/s" t.rate_per_s
  | Closed_loop -> fprintf ppf ", concurrency %d" t.concurrency);
  fprintf ppf ", zipf %.2f" t.zipf_s;
  if t.diurnal_amplitude > 0. then
    fprintf ppf ", diurnal %.0f%% over %.0fs" (100. *. t.diurnal_amplitude)
      t.diurnal_period_s;
  (match t.spike_at_s with
  | Some at ->
    fprintf ppf ", spike x%.1f at %.0fs (+/-%.0fs)" t.spike_factor at
      (t.spike_width_s /. 2.)
  | None -> ());
  fprintf ppf ", seed %d" t.seed
