(** Fleet load profiles: who arrives when, to play what.

    A load profile describes a population of streaming sessions the
    way capacity planning sees it — an arrival process (open loop at a
    mean rate, or closed loop holding a fixed concurrency per shard),
    a Zipf popularity curve over the clip catalog, an optional diurnal
    modulation of the arrival rate, and an optional flash-crowd spike.
    Everything is generated from an explicit seed through the repo's
    deterministic PRNG ({!Image.Prng}), so a profile expands to the
    same arrivals on every run and every host.

    Profiles load from `key = value` text files (same grammar family
    as fault and resilience profiles, `#` comments allowed):

    {v
    arrival = open            # open | closed
    sessions = 10000
    rate_per_s = 120          # open loop: mean arrival rate
    concurrency = 32          # closed loop: in-flight target per shard
    zipf_s = 1.1              # popularity skew (0 = uniform)
    diurnal_amplitude = 0.4   # [0, 1): rate swings +/-40%
    diurnal_period_s = 600
    spike_at_s = 120          # optional flash crowd
    spike_factor = 5
    spike_width_s = 30
    seed = 7
    v} *)

type arrival = Open_loop | Closed_loop

type t = {
  arrival : arrival;
  sessions : int;
  rate_per_s : float;  (** open loop: mean arrivals per simulated second *)
  concurrency : int;  (** closed loop: sessions held in flight per shard *)
  zipf_s : float;  (** popularity exponent; 0 is uniform *)
  diurnal_amplitude : float;  (** [0, 1): sinusoidal rate modulation *)
  diurnal_period_s : float;
  spike_at_s : float option;  (** flash-crowd centre, simulated seconds *)
  spike_factor : float;  (** rate multiplier inside the spike window *)
  spike_width_s : float;
  seed : int;
}

val default : t
(** Open loop, 1000 sessions at 100/s, zipf 1.1, no diurnal swing, no
    spike, seed 7. *)

val parse : string -> (t, string) result
val load : path:string -> (t, string) result

val rate_at : t -> float -> float
(** [rate_at t now_s] is the instantaneous open-loop arrival rate with
    diurnal and spike modulation applied (floored just above zero). *)

type plan = {
  clip_of : int array;  (** catalog index per session id *)
  arrival_s : float array;
      (** arrival time per session id, non-decreasing; all zero for
          closed loop, where the scheduler starts sessions as slots
          free up *)
}

val plan : t -> catalog:int -> plan
(** [plan t ~catalog] expands the profile against a catalog of
    [catalog] clips. Clip choice and arrival times draw from distinct
    seeded streams, so reshaping the arrival process never changes
    which clip a session plays (and with it the session's shard).
    Raises [Invalid_argument] on an empty catalog. *)

val pp : Format.formatter -> t -> unit
