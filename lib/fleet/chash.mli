(** Consistent-hash ring over shards.

    The fleet scheduler routes every session to the shard owning its
    clip, so each shard's prepared-stream cache only ever holds the
    clips hashed to it. A consistent ring (virtual nodes on FNV-1a
    64-bit points) keeps that ownership stable as the fleet is
    re-provisioned: growing from [n] to [n + 1] shards moves only
    about [1 / (n + 1)] of the keys — a modulo assignment would move
    almost all of them and cold-start every cache at once. Hashing is
    seedless and platform-independent, so a key's owner is a pure
    function of [(key, shards, vnodes)] — reproducible across runs,
    which the fleet's determinism tests rely on. *)

type t

val create : ?vnodes:int -> shards:int -> unit -> t
(** [create ~shards ()] builds a ring of [shards * vnodes] points
    ([vnodes] defaults to 64 — enough for a few percent of assignment
    imbalance). Raises [Invalid_argument] when either count is below
    one. *)

val lookup : t -> string -> int
(** [lookup t key] is the owning shard, in [0, shards). *)

val shards : t -> int
