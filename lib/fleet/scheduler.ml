type config = {
  shards : int;
  vnodes : int;
  capacity : int;
  queue_limit : int;
  rules : Obs.Slo.rule list;
}

(* Windowed series the fleet monitor evaluates; declared at module
   initialisation so the offline SLO checker knows the names. *)
let s_fleet_completed = Obs.Monitor.declare_series "fleet_completed"
let s_fleet_failed = Obs.Monitor.declare_series "fleet_failed"
let s_fleet_shed = Obs.Monitor.declare_series "fleet_shed"
let g_fleet_device_savings = Obs.Monitor.declare_series "fleet_device_savings"

let default_rules () =
  [
    Obs.Slo.of_string_exn "fleet_failed_per_s == 0";
    Obs.Slo.of_string_exn "fleet_device_savings >= 0";
  ]

let default_config =
  {
    shards = 4;
    vnodes = 64;
    capacity = 64;
    queue_limit = 256;
    rules = default_rules ();
  }

(* One monitor observation, recorded on a shard's local timeline and
   merged fleet-wide afterwards. [gauge = None] bumps a windowed
   counter series; [Some v] sets a gauge. *)
type sample = { at_us : int; series : string; gauge : float option }

type shard_report = {
  shard : int;
  assigned : int;
  completed : int;
  degraded : int;
  failed : int;
  shed : int;
  ticks : int;
  peak_in_flight : int;
  sim_end_s : float;
  cache_hits : int;
  cache_misses : int;
  savings_sum : float;
  events : Obs.Journal.event list;
  samples : sample list;  (** chronological *)
}

type report = {
  config : config;
  sessions : int;
  completed : int;
  degraded : int;
  failed : int;
  shed : int;
  ticks : int;
  sim_duration_s : float;
  sessions_per_sim_second : float;
  mean_device_savings : float;
  shard_reports : shard_report array;
  journal_events : Obs.Journal.event list;
  monitor : Obs.Monitor.report;
}

let journal r = Obs.Journal.encode r.journal_events

(* --- a tiny binary min-heap on (time, sequence) ------------------------- *)

(* The event queue of the discrete-event loop. Ordering is total and
   deterministic: simulated microseconds first, push sequence second,
   so simultaneous events fire in the order the (sequential) shard
   loop created them. *)
module Heap = struct
  type 'a t = {
    mutable data : (int * int * 'a) array;
    mutable size : int;
    mutable seq : int;
  }

  let create () = { data = [||]; size = 0; seq = 0 }

  let before (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

  let push h ~at_us v =
    let entry = (at_us, h.seq, v) in
    h.seq <- h.seq + 1;
    if h.size = Array.length h.data then
      h.data <-
        Array.append h.data
          (Array.make (max 64 (Array.length h.data)) entry);
    h.data.(h.size) <- entry;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      before h.data.(!i) h.data.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && before h.data.(l) h.data.(!smallest) then
          smallest := l;
        if r < h.size && before h.data.(r) h.data.(!smallest) then
          smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

let us_of_s s = int_of_float (Float.round (s *. 1e6))
let s_of_us us = float_of_int us /. 1e6

type pending = { id : int; clip_idx : int; arrival_us : int }

type running = {
  r_id : int;
  machine : Streaming.Session.machine;
  start_us : int;
  dt_us : int;
  total_frames : int;
}

type action = Arrive of pending | Step of running

(* --- one shard: a sequential discrete-event loop ------------------------ *)

let run_shard ~(config : config) ~session_config ~(clips : Video.Clip.t array)
    ~(load : Load.t) ~shard ~(assigned : pending array) =
  let journal = Obs.Journal.create () in
  let record ~at_us kind =
    Obs.Journal.record_in journal ~t_s:(s_of_us at_us) kind
  in
  record ~at_us:0
    (Obs.Journal.Fleet_shard_start
       { shard; shards = config.shards; sessions = Array.length assigned });
  (* The shard's server front: the prepared-stream cache and the PR 8
     bulkhead guard the expensive annotate/encode path; sessions then
     share the warm artifacts through [Session.prepare_input]. *)
  let server = Streaming.Server.create () in
  Array.iter (Streaming.Server.add_clip server) clips;
  let bulkhead =
    Resilience.Bulkhead.create
      ~config:
        {
          Resilience.Bulkhead.capacity = config.capacity;
          queue_limit = config.queue_limit;
        }
      ~name:(Printf.sprintf "fleet-shard-%d" shard)
      ()
  in
  let negotiated =
    {
      Streaming.Negotiation.device = session_config.Streaming.Session.device;
      quality = session_config.Streaming.Session.quality;
      mapping = session_config.Streaming.Session.mapping;
    }
  in
  let warm : (int, Streaming.Session.prepared_input) Hashtbl.t =
    Hashtbl.create 16
  in
  let prepared_for clip_idx =
    match Hashtbl.find_opt warm clip_idx with
    | Some p -> p
    | None ->
      let clip = clips.(clip_idx) in
      let track =
        match
          Streaming.Server.prepare ~bulkhead server
            ~name:clip.Video.Clip.name ~session:negotiated
        with
        | Ok prep -> Some prep.Streaming.Server.track
        | Error _ -> None
      in
      let p = Streaming.Session.prepare_input ?track session_config clip in
      Hashtbl.add warm clip_idx p;
      p
  in
  let samples = ref [] in
  let sample ?gauge ~at_us series =
    samples := { at_us; series; gauge } :: !samples
  in
  let heap : action Heap.t = Heap.create () in
  let waiting : pending Queue.t = Queue.create () in
  let backlog : pending Queue.t = Queue.create () in
  let in_flight = ref 0 in
  let peak_in_flight = ref 0 in
  let completed = ref 0 in
  let degraded = ref 0 in
  let failed = ref 0 in
  let shed = ref 0 in
  let ticks = ref 0 in
  let savings_sum = ref 0. in
  let sim_end_us = ref 0 in
  (* Closed loop holds [concurrency] sessions in flight per shard (the
     shard loops are independent by construction, so the target cannot
     be fleet-global); open loop admits up to [capacity]. *)
  let slots =
    match load.Load.arrival with
    | Load.Open_loop -> config.capacity
    | Load.Closed_loop -> min config.capacity load.Load.concurrency
  in
  let schedule_next (r : running) =
    match Streaming.Session.progress r.machine with
    | `Frame i -> Heap.push heap ~at_us:(r.start_us + (i * r.dt_us)) (Step r)
    | `Finalize ->
      Heap.push heap ~at_us:(r.start_us + (r.total_frames * r.dt_us)) (Step r)
    | `Setup | `Complete -> ()
  in
  let finish (r : running) ~at_us =
    (match Streaming.Session.result r.machine with
    | Some (Ok rep) ->
      incr completed;
      let is_degraded =
        (not rep.Streaming.Session.annotations_survived)
        || rep.Streaming.Session.degraded_scenes > 0
      in
      if is_degraded then incr degraded;
      savings_sum := !savings_sum +. rep.Streaming.Session.device_savings;
      record ~at_us
        (Obs.Journal.Fleet_session_end
           {
             session = r.r_id;
             outcome = (if is_degraded then "degraded" else "ok");
             degraded_scenes = rep.Streaming.Session.degraded_scenes;
           });
      sample ~at_us s_fleet_completed;
      sample ~at_us ~gauge:rep.Streaming.Session.device_savings
        g_fleet_device_savings
    | Some (Error _) | None ->
      incr completed;
      incr failed;
      record ~at_us
        (Obs.Journal.Fleet_session_end
           { session = r.r_id; outcome = "error"; degraded_scenes = 0 });
      sample ~at_us s_fleet_completed;
      sample ~at_us s_fleet_failed);
    decr in_flight
  in
  let rec admit (p : pending) ~at_us =
    record ~at_us
      (Obs.Journal.Fleet_admission
         {
           session = p.id;
           decision = "admitted";
           in_flight = !in_flight;
           queued = Queue.length waiting;
         });
    incr in_flight;
    if !in_flight > !peak_in_flight then peak_in_flight := !in_flight;
    let cfg =
      { session_config with Streaming.Session.seed = session_config.seed + p.id }
    in
    let machine =
      Streaming.Session.create ~prepared:(prepared_for p.clip_idx) cfg
        clips.(p.clip_idx)
    in
    (* Session-start, transmit and decode all resolve at admission
       time; the per-frame ticks then interleave with every other
       running session on the shard clock. *)
    let rec setup () =
      match Streaming.Session.progress machine with
      | `Setup ->
        ignore (Streaming.Session.step machine);
        incr ticks;
        setup ()
      | `Frame _ | `Finalize | `Complete -> ()
    in
    setup ();
    let r =
      {
        r_id = p.id;
        machine;
        start_us = at_us;
        dt_us = us_of_s (Streaming.Session.dt_s machine);
        total_frames = Streaming.Session.frames machine;
      }
    in
    match Streaming.Session.progress machine with
    | `Complete -> finish r ~at_us; release ~at_us
    | _ -> schedule_next r
  and release ~at_us =
    (* A slot freed: pull from the waiting room first, then (closed
       loop) start the next session of the backlog. *)
    if !in_flight < slots then
      match Queue.take_opt waiting with
      | Some p -> admit p ~at_us
      | None -> (
        match Queue.take_opt backlog with
        | Some p ->
          record ~at_us
            (Obs.Journal.Fleet_arrival
               { session = p.id; clip = clips.(p.clip_idx).Video.Clip.name });
          admit p ~at_us
        | None -> ())
  in
  let arrive (p : pending) ~at_us =
    record ~at_us
      (Obs.Journal.Fleet_arrival
         { session = p.id; clip = clips.(p.clip_idx).Video.Clip.name });
    if !in_flight < slots then admit p ~at_us
    else if Queue.length waiting < config.queue_limit then begin
      record ~at_us
        (Obs.Journal.Fleet_admission
           {
             session = p.id;
             decision = "queued";
             in_flight = !in_flight;
             queued = Queue.length waiting;
           });
      Queue.push p waiting
    end
    else begin
      incr shed;
      record ~at_us
        (Obs.Journal.Fleet_admission
           {
             session = p.id;
             decision = "shed";
             in_flight = !in_flight;
             queued = Queue.length waiting;
           });
      sample ~at_us s_fleet_shed
    end
  in
  (match load.Load.arrival with
  | Load.Open_loop ->
    Array.iter (fun p -> Heap.push heap ~at_us:p.arrival_us (Arrive p)) assigned
  | Load.Closed_loop ->
    (* Feed the backlog in session order and pull the first window in
       through [release] so the admission path is uniform. *)
    Array.iter (fun p -> Queue.push p backlog) assigned;
    for _ = 1 to slots do
      release ~at_us:0
    done);
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (at_us, _, Arrive p) ->
      if at_us > !sim_end_us then sim_end_us := at_us;
      arrive p ~at_us;
      drain ()
    | Some (at_us, _, Step r) ->
      if at_us > !sim_end_us then sim_end_us := at_us;
      ignore (Streaming.Session.step r.machine);
      incr ticks;
      (match Streaming.Session.progress r.machine with
      | `Complete ->
        finish r ~at_us;
        release ~at_us
      | _ -> schedule_next r);
      drain ()
  in
  drain ();
  let cache_hits, cache_misses = Streaming.Server.cache_stats server in
  {
    shard;
    assigned = Array.length assigned;
    completed = !completed;
    degraded = !degraded;
    failed = !failed;
    shed = !shed;
    ticks = !ticks;
    peak_in_flight = !peak_in_flight;
    sim_end_s = s_of_us !sim_end_us;
    cache_hits;
    cache_misses;
    savings_sum = !savings_sum;
    events = Obs.Journal.events journal;
    samples = List.rev !samples;
  }

(* --- fleet-level rollup ------------------------------------------------- *)

(* Merge every shard's chronological samples into one fleet timeline
   and replay it through a fresh monitor. Ordering is (time, shard,
   intra-shard index) — total and deterministic, so the rollup report
   is identical at any domain count. *)
let rollup_monitor ~(config : config) shard_reports =
  let all =
    Array.of_list
      (List.concat_map
         (fun sr -> List.mapi (fun i s -> (s.at_us, sr.shard, i, s)) sr.samples)
         (Array.to_list shard_reports))
  in
  Array.stable_sort
    (fun (t1, sh1, i1, _) (t2, sh2, i2, _) ->
      compare (t1, sh1, i1) (t2, sh2, i2))
    all;
  let m = Obs.Monitor.create ~rules:config.rules () in
  Array.iter
    (fun (at_us, _, _, s) ->
      Obs.Monitor.tick m ~now_s:(s_of_us at_us);
      match s.gauge with
      | Some v -> Obs.Monitor.set_gauge m s.series v
      | None -> Obs.Monitor.incr m s.series)
    all;
  Obs.Monitor.report m

let run ?pool config ~session_config ~(clips : Video.Clip.t array)
    ~(load : Load.t) =
  if Array.length clips = 0 then
    invalid_arg "Fleet.Scheduler.run: empty catalog";
  if config.shards < 1 then
    invalid_arg "Fleet.Scheduler.run: shards must be >= 1";
  if config.capacity < 1 then
    invalid_arg "Fleet.Scheduler.run: capacity must be >= 1";
  if config.queue_limit < 0 then
    invalid_arg "Fleet.Scheduler.run: queue_limit must be >= 0";
  let plan = Load.plan load ~catalog:(Array.length clips) in
  let ring = Chash.create ~vnodes:config.vnodes ~shards:config.shards () in
  let shard_of_clip =
    Array.map (fun c -> Chash.lookup ring c.Video.Clip.name) clips
  in
  let per_shard = Array.make config.shards [] in
  for id = load.Load.sessions - 1 downto 0 do
    let clip_idx = plan.Load.clip_of.(id) in
    let shard = shard_of_clip.(clip_idx) in
    per_shard.(shard) <-
      { id; clip_idx; arrival_us = us_of_s plan.Load.arrival_s.(id) }
      :: per_shard.(shard)
  done;
  let shard_ids = Array.init config.shards (fun s -> s) in
  let run_one s =
    run_shard ~config ~session_config ~clips ~load ~shard:s
      ~assigned:(Array.of_list per_shard.(s))
  in
  (* Shards are fully independent sequential loops over disjoint
     state, so mapping them across pool domains cannot change any
     shard's byte stream — parallelism is a wall-clock knob only. *)
  let shard_reports =
    match pool with
    | None -> Array.map run_one shard_ids
    | Some pool -> Par.Pool.map_array pool run_one shard_ids
  in
  let sum f = Array.fold_left (fun acc sr -> acc + f sr) 0 shard_reports in
  let completed = sum (fun sr -> sr.completed) in
  let sim_duration_s =
    Array.fold_left (fun acc sr -> Float.max acc sr.sim_end_s) 0. shard_reports
  in
  let savings_sum =
    Array.fold_left (fun acc sr -> acc +. sr.savings_sum) 0. shard_reports
  in
  let ok = completed - sum (fun sr -> sr.failed) in
  {
    config;
    sessions = load.Load.sessions;
    completed;
    degraded = sum (fun sr -> sr.degraded);
    failed = sum (fun sr -> sr.failed);
    shed = sum (fun sr -> sr.shed);
    ticks = sum (fun sr -> sr.ticks);
    sim_duration_s;
    sessions_per_sim_second =
      (if sim_duration_s > 0. then float_of_int completed /. sim_duration_s
       else 0.);
    mean_device_savings =
      (if ok > 0 then savings_sum /. float_of_int ok else 0.);
    shard_reports;
    journal_events =
      List.concat_map
        (fun sr -> sr.events)
        (Array.to_list shard_reports);
    monitor = rollup_monitor ~config shard_reports;
  }

let pp_report ppf r =
  let open Format in
  fprintf ppf
    "@[<v>fleet: %d sessions over %d shards, %.1f simulated s@,\
     completed %d (%d degraded, %d failed), shed %d, %d machine ticks@,\
     %.1f sessions per simulated second, mean device savings %.1f%%@]"
    r.sessions r.config.shards r.sim_duration_s r.completed r.degraded r.failed
    r.shed r.ticks r.sessions_per_sim_second
    (100. *. r.mean_device_savings);
  Array.iter
    (fun sr ->
      fprintf ppf
        "@,\
         shard %d: %d assigned, %d completed, %d shed, peak %d in flight, \
         cache %d/%d"
        sr.shard sr.assigned sr.completed sr.shed sr.peak_in_flight
        sr.cache_hits (sr.cache_hits + sr.cache_misses))
    r.shard_reports
