(** Deterministic fleet scheduler: thousands of poll-able sessions
    interleaved on a simulated clock.

    The scheduler expands a {!Load} profile into sessions, routes each
    one to the shard that owns its clip ({!Chash}), and drives every
    shard as an independent sequential discrete-event loop over
    {!Streaming.Session} tick machines: session setup resolves at
    admission, then each frame becomes one event on the shard's
    simulated timeline, so thousands of sessions interleave
    frame-by-frame the way a fleet of devices would — without threads
    and without wall-clock time anywhere in the loop.

    Each shard fronts its own prepared-stream cache through
    {!Streaming.Server.prepare} behind the bulkhead wiring, applies
    admission control at its boundary (admit below [capacity], queue
    up to [queue_limit], then shed), and journals every decision
    ([Fleet_shard_start] / [Fleet_arrival] / [Fleet_admission] /
    [Fleet_session_end]) into a per-shard {!Obs.Journal}. Because
    shards share no state, running them across a {!Par.Pool} changes
    wall-clock time only: every per-shard journal, report and sample
    stream is byte-identical at any domain count, and the fleet report
    concatenates and folds them in shard order. *)

type config = {
  shards : int;
  vnodes : int;  (** virtual nodes per shard on the hash ring *)
  capacity : int;  (** concurrent sessions admitted per shard *)
  queue_limit : int;  (** waiting-room depth before arrivals are shed *)
  rules : Obs.Slo.rule list;  (** evaluated on the fleet-wide rollup *)
}

val default_rules : unit -> Obs.Slo.rule list
(** No failed sessions ([fleet_failed_per_s == 0]) and non-negative
    device savings ([fleet_device_savings >= 0]). *)

val default_config : config
(** 4 shards, 64 vnodes, capacity 64, queue limit 256, default
    rules. *)

type sample = { at_us : int; series : string; gauge : float option }
(** One monitor observation on a shard's simulated timeline; [None]
    bumps a counter series, [Some v] sets a gauge. *)

type shard_report = {
  shard : int;
  assigned : int;
  completed : int;
  degraded : int;
  failed : int;
  shed : int;
  ticks : int;  (** session-machine steps executed *)
  peak_in_flight : int;
  sim_end_s : float;
  cache_hits : int;
  cache_misses : int;
  savings_sum : float;
  events : Obs.Journal.event list;
  samples : sample list;
}

type report = {
  config : config;
  sessions : int;
  completed : int;
  degraded : int;
  failed : int;
  shed : int;
  ticks : int;
  sim_duration_s : float;  (** latest simulated instant on any shard *)
  sessions_per_sim_second : float;
      (** completed sessions per simulated second — deterministic, the
          fleet's throughput headline *)
  mean_device_savings : float;  (** over sessions that completed ok *)
  shard_reports : shard_report array;
  journal_events : Obs.Journal.event list;
      (** all shards' events, concatenated in shard order; each shard
          opens with [Fleet_shard_start], which resets the journal
          verifier's clock *)
  monitor : Obs.Monitor.report;  (** fleet-wide SLO rollup *)
}

val run :
  ?pool:Par.Pool.t ->
  config ->
  session_config:Streaming.Session.config ->
  clips:Video.Clip.t array ->
  load:Load.t ->
  report
(** [run config ~session_config ~clips ~load] expands [load] against
    the [clips] catalog and drives the whole fleet to completion on
    the simulated clock. Session [i] runs with
    [{session_config with seed = seed + i}]. The result is a pure
    function of the arguments: [?pool] only parallelises the
    independent shard loops. Raises [Invalid_argument] on an empty
    catalog or non-positive shard/capacity counts. *)

val journal : report -> string
(** Encoded fleet journal ({!Obs.Journal.encode} of
    [journal_events]) — verifiable by the journal linter. *)

val pp_report : Format.formatter -> report -> unit
