module Diagnostic = Check.Diagnostic

(* A node is one top-level (or submodule-level) binding in one file,
   identified as "path#Qualified.name". Resolution is purely
   syntactic: no type information, so functors and first-class
   functions stay unresolved (DESIGN.md §15 states the trade-off). *)

type callee = Internal of string | External of string

type reference = {
  r_parts : string list;
  r_line : int;
  r_col : int;
  r_opens : string list list;
}

type def = {
  d_file : string;
  d_name : string;
  d_scope : string list;
  d_line : int;
  d_col : int;
  d_rec : bool;
  mutable d_id : string;
  mutable d_refs : reference list;
  mutable d_callees : (callee * int) list;
}

type t = {
  g_defs : def list;
  g_index : (string * string, def) Hashtbl.t;
  g_by_id : (string, def) Hashtbl.t;
  g_by_loc : (string * int, def) Hashtbl.t;
  g_aliases : (string * string, string list) Hashtbl.t;
  g_sources : (string, Lint.source) Hashtbl.t;
}

let node_id file name = file ^ "#" ^ name

(* --- path → library mapping -------------------------------------------- *)

let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

(* dune's dir → public-module mapping; lib/check hosts two libraries
   (the compiler-libs quarantine), split by unit. *)
let check_units = [ "Diagnostic"; "Artifact" ]
let check_lint_units = [ "Lint"; "Callgraph"; "Concurrency" ]

let unit_of_file path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let dir_of_file path = Filename.dirname (normalize path)

let lib_publics_of_dir dir =
  match Filename.basename dir with
  | "annot" -> [ "Annotation" ]
  | "check" -> [ "Check"; "Check_lint" ]
  | d -> [ String.capitalize_ascii d ]

let unit_in_public ~dir ~public unit =
  match (Filename.basename dir, public) with
  | "check", "Check" -> List.mem unit check_units
  | "check", "Check_lint" -> List.mem unit check_lint_units
  | _ -> true

(* --- collection -------------------------------------------------------- *)

let rec lid_parts = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> lid_parts l @ [ s ]
  | Longident.Lapply _ -> []

let line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let rec pat_vars (p : Parsetree.pattern) acc =
  match p.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> txt :: acc
  | Parsetree.Ppat_alias (q, { txt; _ }) -> pat_vars q (txt :: acc)
  | Parsetree.Ppat_tuple ps | Parsetree.Ppat_array ps ->
    List.fold_left (fun a q -> pat_vars q a) acc ps
  | Parsetree.Ppat_construct (_, Some (_, q)) -> pat_vars q acc
  | Parsetree.Ppat_variant (_, Some q) -> pat_vars q acc
  | Parsetree.Ppat_record (fields, _) ->
    List.fold_left (fun a (_, q) -> pat_vars q a) acc fields
  | Parsetree.Ppat_or (a, b) -> pat_vars a (pat_vars b acc)
  | Parsetree.Ppat_constraint (q, _)
  | Parsetree.Ppat_lazy q
  | Parsetree.Ppat_exception q
  | Parsetree.Ppat_open (_, q) ->
    pat_vars q acc
  | _ -> acc

let binding_name (p : Parsetree.pattern) =
  let rec peel (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } -> Some txt
    | Parsetree.Ppat_constraint (q, _) -> peel q
    | _ -> None
  in
  peel p

let is_operator name =
  name <> ""
  &&
  match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> false | _ -> true

type collector = {
  c_file : string;
  mutable c_defs : def list;
  mutable c_cur : def option;
  mutable c_scope : string list list;
  mutable c_opens : string list list;
  mutable c_file_opens : string list list;
  mutable c_modpath : string list;
  c_aliases : (string * string, string list) Hashtbl.t;
}

let in_local_scope c name =
  List.exists (fun frame -> List.mem name frame) c.c_scope

let record_head c (f : Parsetree.expression) =
  match f.pexp_desc with
  | Parsetree.Pexp_ident { txt; loc } -> (
    match lid_parts txt with
    | [] -> ()
    | [ one ] when is_operator one || in_local_scope c one -> ()
    | parts -> (
      match c.c_cur with
      | None -> ()
      | Some d ->
        let line, col = line_col loc in
        let opens = c.c_opens @ List.rev c.c_file_opens in
        d.d_refs <-
          { r_parts = parts; r_line = line; r_col = col; r_opens = opens }
          :: d.d_refs))
  | _ -> ()

let positional args =
  List.filter_map
    (fun (lbl, a) ->
      match lbl with Asttypes.Nolabel -> Some a | _ -> None)
    args

let collect_file file (ast : Parsetree.structure) aliases =
  let c =
    {
      c_file = file;
      c_defs = [];
      c_cur = None;
      c_scope = [];
      c_opens = [];
      c_file_opens = [];
      c_modpath = [];
      c_aliases = aliases;
    }
  in
  let with_frame frame k =
    c.c_scope <- frame :: c.c_scope;
    k ();
    c.c_scope <- List.tl c.c_scope
  in
  let expr it (e : Parsetree.expression) =
    match e.pexp_desc with
    | Parsetree.Pexp_apply (f, args) ->
      record_head c f;
      (match f.pexp_desc with
      | Parsetree.Pexp_ident { txt = Longident.Lident ("|>" | "@@"); _ } -> (
        let fn_side =
          match (f.pexp_desc, positional args) with
          | Parsetree.Pexp_ident { txt = Longident.Lident "|>"; _ }, [ _; g ]
            ->
            Some g
          | Parsetree.Pexp_ident { txt = Longident.Lident "@@"; _ }, [ g; _ ]
            ->
            Some g
          | _ -> None
        in
        match fn_side with Some g -> record_head c g | None -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    | Parsetree.Pexp_fun (_, default, pat, body) ->
      Option.iter (it.expr it) default;
      with_frame (pat_vars pat []) (fun () -> it.expr it body)
    | Parsetree.Pexp_let (rf, vbs, body) ->
      let bound =
        List.concat_map
          (fun (vb : Parsetree.value_binding) -> pat_vars vb.pvb_pat [])
          vbs
      in
      (match rf with
      | Asttypes.Recursive ->
        with_frame bound (fun () ->
            List.iter
              (fun (vb : Parsetree.value_binding) -> it.expr it vb.pvb_expr)
              vbs;
            it.expr it body)
      | Asttypes.Nonrecursive ->
        List.iter
          (fun (vb : Parsetree.value_binding) -> it.expr it vb.pvb_expr)
          vbs;
        with_frame bound (fun () -> it.expr it body))
    | Parsetree.Pexp_match (scrut, cases) | Parsetree.Pexp_try (scrut, cases)
      ->
      it.expr it scrut;
      List.iter
        (fun (case : Parsetree.case) ->
          with_frame (pat_vars case.pc_lhs []) (fun () ->
              Option.iter (it.expr it) case.pc_guard;
              it.expr it case.pc_rhs))
        cases
    | Parsetree.Pexp_function cases ->
      List.iter
        (fun (case : Parsetree.case) ->
          with_frame (pat_vars case.pc_lhs []) (fun () ->
              Option.iter (it.expr it) case.pc_guard;
              it.expr it case.pc_rhs))
        cases
    | Parsetree.Pexp_for (pat, e1, e2, _, body) ->
      it.expr it e1;
      it.expr it e2;
      with_frame (pat_vars pat []) (fun () -> it.expr it body)
    | Parsetree.Pexp_open (od, body) -> (
      match od.popen_expr.pmod_desc with
      | Parsetree.Pmod_ident { txt; _ } ->
        c.c_opens <- lid_parts txt :: c.c_opens;
        it.expr it body;
        c.c_opens <- List.tl c.c_opens
      | _ -> it.expr it body)
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  let add_def ?(rec_ = false) name loc =
    let line, col = line_col loc in
    let d =
      {
        d_file = file;
        d_name = String.concat "." (c.c_modpath @ [ name ]);
        d_scope = c.c_modpath;
        d_line = line;
        d_col = col;
        d_rec = rec_;
        d_id = "";
        d_refs = [];
        d_callees = [];
      }
    in
    c.c_defs <- d :: c.c_defs;
    d
  in
  let rec structure_item (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Parsetree.Pstr_value (rf, vbs) ->
      let rec_ = rf = Asttypes.Recursive in
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          let name =
            match binding_name vb.pvb_pat with
            | Some n -> n
            | None ->
              Printf.sprintf "(init:%d)" (fst (line_col vb.pvb_loc))
          in
          let d = add_def ~rec_ name vb.pvb_loc in
          let saved = c.c_cur in
          c.c_cur <- Some d;
          it.expr it vb.pvb_expr;
          c.c_cur <- saved)
        vbs
    | Parsetree.Pstr_module mb -> module_binding mb
    | Parsetree.Pstr_recmodule mbs -> List.iter module_binding mbs
    | Parsetree.Pstr_open od -> (
      match od.popen_expr.pmod_desc with
      | Parsetree.Pmod_ident { txt; _ } ->
        c.c_file_opens <- lid_parts txt :: c.c_file_opens
      | _ -> ())
    | Parsetree.Pstr_eval (e, _) ->
      let d =
        add_def (Printf.sprintf "(init:%d)" (fst (line_col item.pstr_loc)))
          item.pstr_loc
      in
      let saved = c.c_cur in
      c.c_cur <- Some d;
      it.expr it e;
      c.c_cur <- saved
    | _ -> ()
  and module_binding (mb : Parsetree.module_binding) =
    let name = match mb.pmb_name.txt with Some n -> n | None -> "_" in
    let rec peel (me : Parsetree.module_expr) =
      match me.pmod_desc with
      | Parsetree.Pmod_constraint (inner, _) -> peel inner
      | d -> d
    in
    match peel mb.pmb_expr with
    | Parsetree.Pmod_ident { txt; _ } ->
      let dotted = String.concat "." (c.c_modpath @ [ name ]) in
      Hashtbl.replace c.c_aliases (file, dotted) (lid_parts txt)
    | Parsetree.Pmod_structure items ->
      c.c_modpath <- c.c_modpath @ [ name ];
      List.iter structure_item items;
      c.c_modpath <-
        List.filteri (fun i _ -> i < List.length c.c_modpath - 1) c.c_modpath
    | _ -> ()
  in
  List.iter structure_item ast;
  List.rev c.c_defs

(* --- resolution -------------------------------------------------------- *)

type index = {
  ix_units : (string * string, string) Hashtbl.t; (* (dir, Unit) -> file *)
  ix_dirs : (string, string) Hashtbl.t; (* public lib name -> dir *)
}

let build_index files =
  let ix = { ix_units = Hashtbl.create 64; ix_dirs = Hashtbl.create 16 } in
  List.iter
    (fun file ->
      let dir = dir_of_file file in
      let unit = unit_of_file file in
      Hashtbl.replace ix.ix_units (dir, unit) file;
      List.iter
        (fun public -> Hashtbl.replace ix.ix_dirs public dir)
        (lib_publics_of_dir dir))
    files;
  ix

let scope_prefixes scope =
  (* innermost first, ending with the file's top level *)
  let rec inits = function
    | [] -> [ [] ]
    | _ :: _ as l ->
      l :: inits (List.filteri (fun i _ -> i < List.length l - 1) l)
  in
  inits scope

let pick_def g file dotted ~ref_line ~self =
  let candidates = Hashtbl.find_all g.g_index (file, dotted) in
  let eligible d =
    match self with
    | Some s when d == s && not s.d_rec -> false
    | _ -> true
  in
  let best p =
    List.fold_left
      (fun acc d ->
        if not (eligible d && p d) then acc
        else
          match acc with
          | Some b when b.d_line >= d.d_line -> acc
          | _ -> Some d)
      None candidates
  in
  match ref_line with
  | Some l -> (
    match best (fun d -> d.d_line <= l) with
    | Some d -> Some d
    | None -> best (fun _ -> true) (* forward refs in mutual recursion *))
  | None -> best (fun _ -> true)

let umbrella_file ix dir =
  let unit = String.capitalize_ascii (Filename.basename dir) in
  Hashtbl.find_opt ix.ix_units (dir, unit)

let rec resolve g ix ~ctx_file ~scope ~opens ~ref_line ~self parts depth =
  if depth > 10 then External (String.concat "." parts)
  else
    let dir = dir_of_file ctx_file in
    let dotted = String.concat "." parts in
    let try_prefixes f =
      List.fold_left
        (fun acc prefix -> match acc with Some _ -> acc | None -> f prefix)
        None (scope_prefixes scope)
    in
    (* 1. definitions in the same file, innermost enclosing module first *)
    let same_file =
      try_prefixes (fun prefix ->
          let qualified = String.concat "." (prefix @ parts) in
          match pick_def g ctx_file qualified ~ref_line ~self with
          | Some d -> Some (Internal d.d_id)
          | None -> None)
    in
    match same_file with
    | Some r -> r
    | None -> (
      (* 2. module aliases in the same file (umbrella redirects) *)
      let via_alias =
        match parts with
        | p1 :: rest ->
          try_prefixes (fun prefix ->
              let qualified = String.concat "." (prefix @ [ p1 ]) in
              match Hashtbl.find_opt g.g_aliases (ctx_file, qualified) with
              | Some target ->
                Some
                  (resolve g ix ~ctx_file ~scope ~opens:[] ~ref_line ~self
                     (target @ rest) (depth + 1))
              | None -> None)
        | [] -> None
      in
      match via_alias with
      | Some r -> r
      | None -> (
        (* 3. sibling compilation unit of the same library *)
        let via_unit =
          match parts with
          | p1 :: (_ :: _ as rest) -> (
            match Hashtbl.find_opt ix.ix_units (dir, p1) with
            | Some file when file <> ctx_file ->
              Some
                (resolve g ix ~ctx_file:file ~scope:[] ~opens:[]
                   ~ref_line:None ~self:None rest (depth + 1))
            | _ -> None)
          | _ -> None
        in
        match via_unit with
        | Some r -> r
        | None -> (
          (* 4. public library name, with umbrella fallback *)
          let via_lib =
            match parts with
            | public :: (_ :: _ as rest) -> (
              match Hashtbl.find_opt ix.ix_dirs public with
              | Some ldir -> (
                match rest with
                | unit :: (_ :: _ as inner)
                  when Hashtbl.mem ix.ix_units (ldir, unit)
                       && unit_in_public ~dir:ldir ~public unit ->
                  let file = Hashtbl.find ix.ix_units (ldir, unit) in
                  Some
                    (resolve g ix ~ctx_file:file ~scope:[] ~opens:[]
                       ~ref_line:None ~self:None inner (depth + 1))
                | _ -> (
                  match umbrella_file ix ldir with
                  | Some file when file <> ctx_file ->
                    Some
                      (resolve g ix ~ctx_file:file ~scope:[] ~opens:[]
                         ~ref_line:None ~self:None rest (depth + 1))
                  | _ -> None))
              | None -> None)
            | _ -> None
          in
          match via_lib with
          | Some r -> r
          | None -> (
            (* 5. local and file-level opens *)
            let via_open =
              List.fold_left
                (fun acc o ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                    match
                      resolve g ix ~ctx_file ~scope ~opens:[] ~ref_line ~self
                        (o @ parts) (depth + 1)
                    with
                    | Internal _ as r -> Some r
                    | External _ -> None))
                None opens
            in
            match via_open with Some r -> r | None -> External dotted))))

(* --- construction ------------------------------------------------------ *)

let build (sources : Lint.source list) =
  let g =
    {
      g_defs = [];
      g_index = Hashtbl.create 512;
      g_by_id = Hashtbl.create 512;
      g_by_loc = Hashtbl.create 512;
      g_aliases = Hashtbl.create 64;
      g_sources = Hashtbl.create 64;
    }
  in
  let parsed =
    List.filter_map
      (fun (s : Lint.source) ->
        Hashtbl.replace g.g_sources (normalize s.Lint.src_path) s;
        match s.Lint.src_ast with
        | Some ast -> Some (normalize s.Lint.src_path, ast)
        | None -> None)
      sources
  in
  let defs =
    List.concat_map
      (fun (file, ast) -> collect_file file ast g.g_aliases)
      parsed
  in
  let g = { g with g_defs = defs } in
  List.iter (fun d -> Hashtbl.add g.g_index (d.d_file, d.d_name) d) defs;
  (* A shadowed top-level name yields several defs; only the shadowing
     ones get a "@line" discriminator, so the common case keeps the
     readable "file#name" id. *)
  List.iter
    (fun d ->
      let dups = Hashtbl.find_all g.g_index (d.d_file, d.d_name) in
      let latest =
        List.fold_left (fun acc o -> max acc o.d_line) d.d_line dups
      in
      d.d_id <-
        (if List.length dups > 1 && d.d_line < latest then
           Printf.sprintf "%s@%d" (node_id d.d_file d.d_name) d.d_line
         else node_id d.d_file d.d_name);
      Hashtbl.replace g.g_by_id d.d_id d;
      Hashtbl.replace g.g_by_loc (d.d_file, d.d_line) d)
    defs;
  let ix = build_index (List.map fst parsed) in
  List.iter
    (fun d ->
      d.d_callees <-
        List.rev_map
          (fun r ->
            ( resolve g ix ~ctx_file:d.d_file ~scope:d.d_scope
                ~opens:r.r_opens ~ref_line:(Some r.r_line) ~self:(Some d)
                r.r_parts 0,
              r.r_line ))
          d.d_refs
        |> List.sort_uniq compare)
    defs;
  g

(* --- queries ----------------------------------------------------------- *)

let node_ids g =
  List.map (fun d -> d.d_id) g.g_defs |> List.sort_uniq String.compare

let callees g id =
  match Hashtbl.find_opt g.g_by_id id with
  | Some d -> d.d_callees
  | None -> []

let def_info g id =
  match Hashtbl.find_opt g.g_by_id id with
  | Some d -> Some (d.d_file, d.d_name, d.d_line, d.d_col)
  | None -> None

let def_at g ~file ~line =
  match Hashtbl.find_opt g.g_by_loc (normalize file, line) with
  | Some d -> Some d.d_id
  | None -> None

let display_name id =
  let tail =
    match String.index_opt id '#' with
    | Some i -> String.sub id (i + 1) (String.length id - i - 1)
    | None -> id
  in
  match String.index_opt tail '@' with
  | Some i -> String.sub tail 0 i
  | None -> tail

(* [reaches g ~id ~leaves] is the witness chain (display names, leaf
   last) from [id] to the first reachable external in [leaves], found
   by depth-first search over internal edges in sorted callee order so
   the witness is deterministic. *)
let reaches g ~id ~leaves =
  let visited = Hashtbl.create 64 in
  let rec walk id =
    if Hashtbl.mem visited id then None
    else begin
      Hashtbl.replace visited id ();
      let cs = callees g id in
      let direct =
        List.find_map
          (fun (c, _) ->
            match c with
            | External e when List.mem e leaves -> Some e
            | _ -> None)
          cs
      in
      match direct with
      | Some leaf -> Some [ leaf ]
      | None ->
        List.find_map
          (fun (c, _) ->
            match c with
            | Internal next -> (
              match walk next with
              | Some chain -> Some (display_name next :: chain)
              | None -> None)
            | External _ -> None)
          cs
    end
  in
  walk id

(* --- transitive ambient-effect closure --------------------------------- *)

type taint = Clean | Tainted of string list | Direct

let transitive_effects g =
  let source_of file = Hashtbl.find_opt g.g_sources file in
  let allowed file code line =
    match source_of file with
    | Some src -> Lint.is_allowed src ~code ~line
    | None -> false
  in
  let effect_rules =
    [
      ("L001", Lint.clock_idents, "the ambient clock");
      ("L002", Lint.random_idents, "the ambient RNG");
    ]
  in
  List.concat_map
    (fun (code, leaves, what) ->
      let memo : (string, taint) Hashtbl.t = Hashtbl.create 256 in
      let rec taint id =
        match Hashtbl.find_opt memo id with
        | Some t -> t
        | None ->
          Hashtbl.replace memo id Clean (* cycle guard *);
          let t =
            match def_info g id with
            | None -> Clean
            | Some (file, _, line, _) ->
              if allowed file code line then Clean
              else
                let cs = callees g id in
                let direct_leaf =
                  List.filter_map
                    (fun (c, l) ->
                      match c with
                      | External e when List.mem e leaves -> Some (e, l)
                      | _ -> None)
                    cs
                in
                let unallowed =
                  List.filter
                    (fun (_, l) -> not (allowed file code l))
                    direct_leaf
                in
                if unallowed <> [] then Direct
                else if direct_leaf <> [] then Clean
                else
                  List.fold_left
                    (fun acc (c, l) ->
                      match (acc, c) with
                      | (Tainted _ | Direct), _ -> acc
                      | Clean, Internal next ->
                        if allowed file code l then Clean
                        else (
                          match taint next with
                          | Clean -> Clean
                          | Tainted chain ->
                            Tainted (display_name next :: chain)
                          | Direct -> (
                            match
                              reaches g ~id:next ~leaves
                            with
                            | Some chain ->
                              Tainted (display_name next :: chain)
                            | None -> Tainted [ display_name next ]))
                      | Clean, External _ -> Clean)
                    Clean cs
          in
          Hashtbl.replace memo id t;
          t
      in
      List.filter_map
        (fun id ->
          match taint id with
          | Clean | Direct -> None
          | Tainted chain -> (
            match def_info g id with
            | None -> None
            | Some (file, name, line, col) ->
              Some
                (Diagnostic.v ~code ~severity:Diagnostic.Error ~file ~line
                   ~col
                   (Printf.sprintf
                      "%s reaches %s through the call chain %s; route \
                       through the sanctioned shim or add a reasoned allow \
                       at this boundary"
                      name what
                      (String.concat " -> " (name :: chain))))))
        (node_ids g))
    effect_rules
  |> List.sort Diagnostic.compare

let source g file = Hashtbl.find_opt g.g_sources (normalize file)
