(** Static concurrency-safety analyzer (the C-rules).

    The L-rules keep single runs deterministic; the C-rules keep the
    parallel tier honest about shared state. The pass runs over the
    same parsed {!Lint.source}s as everything else plus the
    {!Callgraph}, and reports in the same {!Check.Diagnostic}
    currency with the same reasoned [lint: allow] suppression
    grammar.

    Rules (stable codes, see the README "Static checks" table):

    - [C001] module-level mutable state (a [mutable] record field or
      a top-level [ref]/[Hashtbl.t]/[Queue.t]/[Buffer.t]) in a
      par-linked library ([lib/par], [lib/streaming], [lib/obs],
      [lib/resilience], [lib/annot]) with no concurrency story:
      either make it [Atomic.t], or annotate the declaration with
      [(* guarded_by: <mutex> *)] (accessed only under that mutex) or
      [(* owned_by: <reason> *)] (confined to one domain — say why).
    - [C002] a [guarded_by] field read or written in a region that
      does not hold the named mutex — the rule that catches a
      double-checked-locking "fast path" reading state outside the
      lock.
    - [C003] a raw [Mutex.lock] with fewer [Mutex.unlock]s in the
      same top-level binding — a path exists that leaves the lock
      held.
    - [C004] a blocking operation while holding a lock: acquiring
      another mutex (directly, via [Mutex.protect], or via a lock
      helper), [Condition.wait] on a {e different} mutex,
      [Domain.join], or a call whose callee transitively reaches any
      of those through the call graph. [Condition.wait] on the held
      mutex is the sanctioned wait idiom and exempt.
    - [C005] a cycle in the lock-order graph: one region acquires A
      then B, another B then A. Edges come from both direct nested
      acquisitions and the transitive [C004] analysis; each cycle is
      reported once, at its earliest acquisition site.
    - [C006] raw [Domain]/[Atomic]/[Mutex]/[Condition] primitives
      outside the sanctioned modules ([lib/par], [lib/obs],
      [lib/resilience], and the streaming server) — everyone else
      goes through [Par.Pool] and the obs/resilience wrappers.

    Lock regions are inferred syntactically: raw lock/unlock pairs,
    [Mutex.protect], and per-file lock helpers (a function whose body
    starts with [Mutex.lock] on its first parameter, or on a field of
    it — the server's and the registry's [with_lock] shapes). Held
    sets merge by intersection across branches, excluding branches
    that diverge ([raise]/[failwith]/[invalid_arg]), so the pool's
    early-exit unlock idiom is not a false positive. Closures are
    walked with the held set of the point where they appear.

    Everything is a deliberate over-approximation: tokens are the
    last path component of the mutex expression, matching is by name
    within a file, and guarded-field names shared by records with
    different disciplines are dropped rather than guessed. Real
    designs that trip a rule on purpose (journaling under the
    admission lock, profiling a clip under its own lock) carry
    reasoned allows at the site — the suppression is the audit
    trail. *)

type rule = Lint.rule = { code : string; title : string; lib_only : bool }

val rules : rule list
(** Every C-rule, in code order. *)

val check : Callgraph.t -> Lint.source list -> Check.Diagnostic.t list
(** Run all C-rules over [sources] (which must be the sources the
    graph was built from, or a subset). Findings covered by a
    reasoned [lint: allow C00n] on the finding line or the line above
    are dropped; output is sorted with {!Check.Diagnostic.compare}. *)
