(** Cross-module call graph over the repository's own sources.

    Built from already-parsed {!Lint.source}s (one parse per file,
    shared with every other lint pass), the graph records, for each
    top-level or submodule-level binding, the identifiers it applies.
    Module-qualified heads are resolved syntactically across the tree:
    same-file definitions first (innermost enclosing module, latest
    preceding binding — so top-level shadowing and local rebinding
    behave like the compiler), then [module X = Y] aliases, then
    sibling units of the same dune library, then public library names
    ([Streaming.Server.prepare], with umbrella modules like [Obs]
    redirected through their aliases), then any [open]s in scope.
    Anything that survives all of that is an {!External} leaf
    ([Unix.gettimeofday], [List.map], …).

    The model is deliberately an over-approximation with known blind
    spots — functors, first-class functions, and method calls are not
    resolved, and identifiers passed as arguments (rather than
    applied) do not create edges. DESIGN.md §15 argues why that
    trade-off (plus reasoned allows) is right for a repo-local gate.

    The graph powers two whole-tree passes: the transitive closure of
    the L001/L002 ambient-effect rules ({!transitive_effects}) and the
    blocking-reachability / lock-order analyses in {!Concurrency}. *)

type t

type callee =
  | Internal of string
      (** a node id: ["path#Qualified.name"], with ["@line"] appended
          when a top-level name is shadowed in its file *)
  | External of string  (** a dotted path the tree does not define *)

val build : Lint.source list -> t
(** Collect definitions and resolve every application head. Sources
    that failed to parse contribute no nodes. *)

val node_id : string -> string -> string
(** [node_id file name] is the id of [name] defined in [file]. *)

val node_ids : t -> string list
(** Every node id, sorted. *)

val callees : t -> string -> (callee * int) list
(** Resolved application heads of a node with their call lines,
    deduplicated and sorted. Unknown ids yield []. *)

val def_info : t -> string -> (string * string * int * int) option
(** [(file, qualified name, line, col)] of a node's definition. *)

val def_at : t -> file:string -> line:int -> string option
(** The id of the definition starting on [line] of [file], if any —
    how {!Concurrency} maps the binding it is walking back to its
    graph node. *)

val display_name : string -> string
(** The human-readable name of a node id (the part after ["#"],
    without any shadowing discriminator). *)

val reaches : t -> id:string -> leaves:string list -> string list option
(** Deterministic witness chain (display names, external leaf last)
    from [id] to the first reachable external in [leaves], or [None].
    Used both by the effect closure and by the concurrency pass's
    blocking-reachability check. *)

val transitive_effects : t -> Check.Diagnostic.t list
(** The transitive closure of L001/L002: a function that reaches
    [Unix.gettimeofday]/[Sys.time] or the global [Random] entry points
    through any resolved call chain is flagged at its own definition
    line, with the witness chain in the message. A reasoned
    [lint: allow] at the leaf call, at an intermediate call site, or
    on a function's definition line is a trust boundary that stops
    propagation — the direct-call diagnostics themselves remain the
    per-file pass's job, so nothing is reported twice. Sorted. *)

val source : t -> string -> Lint.source option
(** The parsed source for a path, if it was part of {!build}. *)
