(* Offline verification of annotation streams, SLO files and fault
   profiles. Pure byte/text walks: nothing here runs a session, and
   every finding is a Diagnostic rather than an exception. *)

let err ~file code message =
  Diagnostic.v ~code ~severity:Diagnostic.Error ~file message

let warn ~file code message =
  Diagnostic.v ~code ~severity:Diagnostic.Warning ~file message

(* --- known metric catalog ---------------------------------------------- *)

type known_metrics = { histograms : string list; names : string list }

let known_metrics () =
  let snapshot = Obs.Registry.snapshot () in
  let histograms =
    List.filter_map
      (fun (f : Obs.Registry.family_snapshot) ->
        if f.Obs.Registry.kind = Obs.Registry.Histogram then
          Some f.Obs.Registry.family
        else None)
      snapshot
  in
  let families = List.map (fun f -> f.Obs.Registry.family) snapshot in
  {
    histograms;
    names = List.sort_uniq String.compare (families @ Obs.Monitor.declared_series ());
  }

(* --- annotation streams ------------------------------------------------ *)

(* The verifier re-walks the wire bytes itself instead of calling
   [Annotation.Encoding.decode]: the decoder stops at the first problem,
   an auditor wants all of them, each with its offset. The layout
   constants (magic, record size, CRC) come from [Annotation.Encoding] so
   the two can never drift apart silently. *)

type cursor = { data : string; mutable pos : int }

exception Abort of Diagnostic.t

let canonical_permille = [ 0; 50; 100; 150; 200 ]
let max_name_len = 4096
let max_frames = 0xffffff (* u24 record spans cannot address more *)
let max_fps_milli = 1_000_000

let need ~file c n what =
  if c.pos + n > String.length c.data then
    raise
      (Abort
         (err ~file "V103"
            (Printf.sprintf
               "truncated stream: %s at byte %d needs %d byte(s), %d left" what
               c.pos n
               (String.length c.data - c.pos))))

let get_byte ~file c what =
  need ~file c 1 what;
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_varint ~file c what =
  let rec loop shift acc =
    if shift > 56 then
      raise
        (Abort
           (err ~file "V105"
              (Printf.sprintf "%s: varint longer than 8 bytes at byte %d" what
                 c.pos)));
    let b = get_byte ~file c what in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then
      raise
        (Abort
           (err ~file "V105"
              (Printf.sprintf "%s: varint overflows at byte %d" what c.pos)));
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let get_u24 ~file c what =
  need ~file c 3 what;
  let b i = Char.code c.data.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) in
  c.pos <- c.pos + 3;
  v

let get_u32 ~file c what =
  need ~file c 4 what;
  let b i = Char.code c.data.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let get_string ~file c what =
  let n = get_varint ~file c what in
  if n > max_name_len then
    raise
      (Abort
         (err ~file "V105"
            (Printf.sprintf "%s: implausible length %d (cap %d)" what n
               max_name_len)));
  need ~file c n what;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* Per-record semantic checks, shared between v1 and v2. [expected] is
   the frame the record must start at, [None] once an earlier corrupt
   record made the running position unknowable. *)
let check_entry ~file ~add ~levels ~total_frames ~index ~offset ~expected
    ~first_frame ~frame_count ~register ~comp_fixed =
  let where = Printf.sprintf "record %d (byte %d)" index offset in
  if frame_count = 0 then
    add (err ~file "V110" (Printf.sprintf "%s: zero frame_count" where));
  (match expected with
  | Some e when first_frame <> e ->
    add
      (err ~file "V109"
         (Printf.sprintf
            "%s: first_frame %d breaks scene-index monotonicity (expected %d)"
            where first_frame e))
  | _ -> ());
  if first_frame + frame_count > total_frames then
    add
      (err ~file "V110"
         (Printf.sprintf "%s: span %d+%d exceeds total_frames %d" where
            first_frame frame_count total_frames));
  if comp_fixed < 4096 then
    add
      (err ~file "V111"
         (Printf.sprintf "%s: compensation %.4f below 1.0" where
            (float_of_int comp_fixed /. 4096.)));
  match levels with
  | Some levels when register >= levels ->
    add
      (err ~file "V112"
         (Printf.sprintf "%s: backlight register %d outside panel range 0..%d"
            where register (levels - 1)))
  | _ -> ()

let check_annotation ?(find_device = Display.Device.find) ~file data =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let c = { data; pos = 0 } in
  (try
     if String.length data < 4 || String.sub data 0 4 <> "ANPW" then
       raise
         (Abort (err ~file "V101" "bad magic: not an annotation stream"));
     c.pos <- 4;
     let version = get_byte ~file c "version" in
     if version <> 1 && version <> 2 then
       raise
         (Abort
            (err ~file "V102"
               (Printf.sprintf "unsupported version %d (know 1 and 2)" version)));
     let permille = get_varint ~file c "quality" in
     if permille > 1000 then
       add
         (err ~file "V105"
            (Printf.sprintf "quality %d permille exceeds 1000" permille))
     else if not (List.mem permille canonical_permille) then
       add
         (warn ~file "V106"
            (Printf.sprintf
               "quality %d permille is off the paper's {0,5,10,15,20}%% grid"
               permille));
     let fps_milli = get_varint ~file c "fps" in
     if fps_milli = 0 then add (err ~file "V105" "fps is zero")
     else if fps_milli > max_fps_milli then
       add
         (err ~file "V105"
            (Printf.sprintf "fps %.3f is implausible"
               (float_of_int fps_milli /. 1000.)));
     let total_frames = get_varint ~file c "total_frames" in
     if total_frames > max_frames then
       add
         (err ~file "V105"
            (Printf.sprintf "total_frames %d exceeds the u24 span limit %d"
               total_frames max_frames));
     let _clip = get_string ~file c "clip name" in
     let device_name = get_string ~file c "device name" in
     let count = get_varint ~file c "record count" in
     if version = Annotation.Encoding.version then begin
       let covered = c.pos in
       let stored = get_u32 ~file c "header CRC" in
       if stored <> Annotation.Encoding.crc32_sub data ~pos:0 ~len:covered then begin
         add
           (err ~file "V104"
              "header CRC mismatch: header fields cannot be trusted");
         raise Exit
       end
     end;
     let levels =
       Option.map
         (fun d -> d.Display.Device.backlight_levels)
         (find_device device_name)
     in
     let remaining = String.length data - c.pos in
     let rsize = Annotation.Encoding.record_size in
     if version = Annotation.Encoding.version then begin
       if remaining mod rsize <> 0 || count <> remaining / rsize then begin
         add
           (err ~file "V107"
              (Printf.sprintf
                 "declared record count %d disagrees with %d payload byte(s) \
                  (%d byte records); refusing to walk records"
                 count remaining rsize));
         raise Exit
       end;
       let expected = ref (Some 0) in
       let unreliable = ref false in
       for i = 0 to count - 1 do
         let offset = c.pos in
         let stored_crc =
           let b k = Char.code data.[offset + rsize - 4 + k] in
           b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
         in
         if stored_crc <> Annotation.Encoding.crc32_sub data ~pos:offset ~len:(rsize - 4)
         then begin
           add
             (err ~file "V108"
                (Printf.sprintf "record %d (byte %d): record CRC mismatch" i
                   offset));
           unreliable := true;
           expected := None;
           c.pos <- offset + rsize
         end
         else begin
           let first_frame = get_u24 ~file c "first_frame" in
           let frame_count = get_u24 ~file c "frame_count" in
           let register = get_byte ~file c "register" in
           let comp_fixed = get_u24 ~file c "compensation" in
           let _effective = get_byte ~file c "effective max" in
           c.pos <- c.pos + 4 (* the CRC, already verified *);
           check_entry ~file ~add ~levels ~total_frames ~index:i ~offset
             ~expected:!expected ~first_frame ~frame_count ~register
             ~comp_fixed;
           expected := Some (first_frame + frame_count)
         end
       done;
       match !expected with
       | Some covered
         when (not !unreliable)
              && covered <> total_frames
              && List.for_all
                   (fun (d : Diagnostic.t) -> not (Diagnostic.is_error d))
                   !diags ->
         add
           (err ~file "V114"
              (Printf.sprintf "records cover %d of %d frames" covered
                 total_frames))
       | _ -> ()
     end
     else begin
       (* v1: variable-length entries, no CRCs — structural and
          semantic checks only. *)
       if count > remaining / 4 then begin
         add
           (err ~file "V107"
              (Printf.sprintf
                 "declared record count %d cannot fit in %d payload byte(s); \
                  refusing to walk records"
                 count remaining));
         raise Exit
       end;
       let next = ref 0 in
       for i = 0 to count - 1 do
         let offset = c.pos in
         let frame_count = get_varint ~file c "frame_count" in
         let register = get_byte ~file c "register" in
         let comp_fixed = get_varint ~file c "compensation" in
         let _effective = get_byte ~file c "effective max" in
         check_entry ~file ~add ~levels ~total_frames ~index:i ~offset
           ~expected:(Some !next) ~first_frame:!next ~frame_count ~register
           ~comp_fixed;
         next := !next + frame_count
       done;
       if !next <> total_frames
          && List.for_all
               (fun (d : Diagnostic.t) -> not (Diagnostic.is_error d))
               !diags
       then
         add
           (err ~file "V114"
              (Printf.sprintf "records cover %d of %d frames" !next total_frames));
       if c.pos <> String.length data then
         add
           (err ~file "V113"
              (Printf.sprintf "%d trailing byte(s) after the last record"
                 (String.length data - c.pos)))
     end
   with
  | Abort d -> add d
  | Exit -> ());
  List.sort Diagnostic.compare !diags

(* --- SLO files --------------------------------------------------------- *)

(* The set of values satisfying [op threshold], as a closed/open
   interval; two rules on the same selector contradict when their
   intervals miss each other. *)
let interval op t =
  match op with
  | Obs.Slo.Lt -> (neg_infinity, true, t, false)
  | Obs.Slo.Le -> (neg_infinity, true, t, true)
  | Obs.Slo.Gt -> (t, false, infinity, true)
  | Obs.Slo.Ge -> (t, true, infinity, true)
  | Obs.Slo.Eq -> (t, true, t, true)

let compatible a b =
  let lo_a, lo_a_in, hi_a, hi_a_in = interval a.Obs.Slo.op a.Obs.Slo.threshold in
  let lo_b, lo_b_in, hi_b, hi_b_in = interval b.Obs.Slo.op b.Obs.Slo.threshold in
  let lo, lo_in =
    if Float.compare lo_a lo_b > 0 then (lo_a, lo_a_in)
    else if Float.compare lo_b lo_a > 0 then (lo_b, lo_b_in)
    else (lo_a, lo_a_in && lo_b_in)
  in
  let hi, hi_in =
    if Float.compare hi_a hi_b < 0 then (hi_a, hi_a_in)
    else if Float.compare hi_b hi_a < 0 then (hi_b, hi_b_in)
    else (hi_a, hi_a_in && hi_b_in)
  in
  match Float.compare lo hi with
  | c when c < 0 -> true
  | 0 -> lo_in && hi_in
  | _ -> false

let stat_key = function
  | Obs.Slo.Quantile q -> Printf.sprintf "quantile %g" q
  | Obs.Slo.Rate_per_s -> "per-second rate"
  | Obs.Slo.Ratio_per_frame -> "per-frame ratio"
  | Obs.Slo.Last -> "gauge"

let selector_key (r : Obs.Slo.rule) = (r.Obs.Slo.metric, stat_key r.Obs.Slo.stat)

let check_slo ?known ~file text =
  let known =
    match known with Some k -> k | None -> known_metrics ()
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let rules = ref [] in
  List.iteri
    (fun i line ->
      let n = i + 1 in
      match Obs.Slo.parse_line line with
      | Error msg ->
        add
          (Diagnostic.v ~code:"V201" ~severity:Diagnostic.Error ~file ~line:n
             msg)
      | Ok None -> ()
      | Ok (Some rule) -> rules := (n, rule) :: !rules)
    (String.split_on_char '\n' text);
  let rules = List.rev !rules in
  if rules = [] && !diags = [] then
    add (warn ~file "V205" "no rules: this SLO file gates nothing");
  let have_catalog = known.histograms <> [] || known.names <> [] in
  if have_catalog then
    List.iter
      (fun (n, (r : Obs.Slo.rule)) ->
        let metric = r.Obs.Slo.metric in
        match r.Obs.Slo.stat with
        | Obs.Slo.Quantile _ ->
          if not (List.mem metric known.histograms) then
            add
              (Diagnostic.v ~code:"V202" ~severity:Diagnostic.Error ~file
                 ~line:n
                 (Printf.sprintf
                    "no histogram family %S for quantile selector %S" metric
                    r.Obs.Slo.source))
        | _ ->
          if not (List.mem metric known.names) then
            add
              (Diagnostic.v ~code:"V202" ~severity:Diagnostic.Error ~file
                 ~line:n
                 (Printf.sprintf "unknown metric %S in rule %S" metric
                    r.Obs.Slo.source)))
      rules;
  let rec pairs = function
    | [] -> ()
    | (n_a, a) :: rest ->
      List.iter
        (fun (n_b, b) ->
          if selector_key a = selector_key b then
            if
              a.Obs.Slo.op = b.Obs.Slo.op
              && Float.compare a.Obs.Slo.threshold b.Obs.Slo.threshold = 0
            then
              add
                (Diagnostic.v ~code:"V204" ~severity:Diagnostic.Warning ~file
                   ~line:n_b
                   (Printf.sprintf "duplicate of line %d: %S" n_a
                      a.Obs.Slo.source))
            else if not (compatible a b) then
              add
                (Diagnostic.v ~code:"V203" ~severity:Diagnostic.Error ~file
                   ~line:n_b
                   (Printf.sprintf
                      "contradicts line %d: no value satisfies both %S and %S"
                      n_a a.Obs.Slo.source b.Obs.Slo.source)))
        rest;
      pairs rest
  in
  pairs rules;
  List.sort Diagnostic.compare !diags

(* --- fault profiles ---------------------------------------------------- *)

let injects_nothing (t : Streaming.Fault.t) =
  t.Streaming.Fault.loss = Streaming.Fault.No_loss
  && t.Streaming.Fault.corrupt_rate <= 0.
  && t.Streaming.Fault.reorder_rate <= 0.
  && t.Streaming.Fault.jitter_s <= 0.
  && t.Streaming.Fault.collapse = None

let check_fault ~file text =
  match Streaming.Fault.parse text with
  | Error msg -> [ err ~file "V301" msg ]
  | Ok t ->
    if injects_nothing t then
      [ warn ~file "V302" "profile injects no fault at all; did you mean model = none?" ]
    else []

(* --- resilience profiles ------------------------------------------------ *)

(* The runtime deliberately clamps bad values (a profile must never
   wedge a session); the verifier is where out-of-range values become
   findings. Shape errors (unknown keys, bad numbers, unknown rungs)
   surface as the parser's own message. *)
let check_resilience ~file text =
  match Resilience.Profile.parse text with
  | Error msg -> [ err ~file "V501" msg ]
  | Ok p ->
    let diags = ref [] in
    let add d = diags := d :: !diags in
    let positive code what v =
      if v <= 0. then
        add (err ~file code (Printf.sprintf "%s must be positive, got %g" what v))
    in
    let positive_i code what v =
      if v <= 0 then
        add (err ~file code (Printf.sprintf "%s must be positive, got %d" what v))
    in
    (match p.Resilience.Profile.retry with
    | None -> ()
    | Some r ->
      positive "V502" "retry_budget_s" r.Resilience.Retry.budget_s;
      positive_i "V502" "retry_max_rounds" r.Resilience.Retry.max_attempts;
      if r.Resilience.Retry.base_backoff_s < 0. then
        add
          (err ~file "V502"
             (Printf.sprintf "retry_base_s must not be negative, got %g"
                r.Resilience.Retry.base_backoff_s));
      if r.Resilience.Retry.jitter < 0. then
        add
          (err ~file "V502"
             (Printf.sprintf "retry_jitter must not be negative, got %g"
                r.Resilience.Retry.jitter));
      positive "V502" "retry_multiplier" r.Resilience.Retry.multiplier);
    (match p.Resilience.Profile.breaker with
    | None -> ()
    | Some b ->
      if
        b.Resilience.Breaker.failure_threshold < 0.
        || b.Resilience.Breaker.failure_threshold > 1.
      then
        add
          (err ~file "V504"
             (Printf.sprintf "breaker_threshold %g outside [0, 1]"
                b.Resilience.Breaker.failure_threshold));
      positive_i "V502" "breaker_window" b.Resilience.Breaker.window;
      positive_i "V502" "breaker_min_samples" b.Resilience.Breaker.min_samples;
      positive_i "V502" "breaker_probes" b.Resilience.Breaker.probe_quota;
      if b.Resilience.Breaker.cooldown_s < 0. then
        add
          (err ~file "V502"
             (Printf.sprintf "breaker_cooldown_ms must not be negative, got %g"
                (1000. *. b.Resilience.Breaker.cooldown_s))));
    (match p.Resilience.Profile.bulkhead with
    | None -> ()
    | Some b ->
      positive_i "V502" "bulkhead_capacity" b.Resilience.Bulkhead.capacity;
      if b.Resilience.Bulkhead.queue_limit < 0 then
        add
          (err ~file "V502"
             (Printf.sprintf "bulkhead_queue must not be negative, got %d"
                b.Resilience.Bulkhead.queue_limit)));
    (match p.Resilience.Profile.stage_deadline_s with
    | Some d -> positive "V502" "stage_deadline_ms" (d *. 1000.)
    | None -> ());
    (* The ladder must be written shallowest-first with no duplicate
       rungs: the runtime sorts it anyway, so a mis-ordered file means
       the author's mental model and the walk disagree. *)
    let rec check_order = function
      | a :: (b :: _ as rest) ->
        let ra = Resilience.Degrade.rank a and rb = Resilience.Degrade.rank b in
        if ra >= rb then
          add
            (err ~file "V503"
               (Printf.sprintf
                  "ladder steps out of order: %S before %S (write shallowest \
                   first: fresh, stale, clamp, full)"
                  (Resilience.Degrade.label a)
                  (Resilience.Degrade.label b)));
        check_order rest
      | _ -> ()
    in
    check_order p.Resilience.Profile.ladder;
    if Resilience.Profile.is_noop p then
      add
        (warn ~file "V505"
           "profile configures nothing; sessions behave exactly as without \
            --resilience");
    List.sort Diagnostic.compare !diags

(* --- decision journals -------------------------------------------------- *)

(* Mirrors [Obs.Journal.decode_partial]'s walk, but reports every
   problem it can localise instead of silently skipping: the framing
   constants and the payload parser come from [Obs.Journal] so the
   verifier and the decoder cannot drift apart. *)

let max_journal_frame = 65536

let check_journal ~file data =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (try
     if String.length data < 4 || String.sub data 0 4 <> Obs.Journal.magic
     then begin
       add (err ~file "V401" "bad magic: not a decision journal");
       raise Exit
     end;
     if String.length data < 5 then begin
       add (err ~file "V403" "truncated header: missing version byte");
       raise Exit
     end;
     let version = Char.code data.[4] in
     if version <> Obs.Journal.version then begin
       add
         (err ~file "V402"
            (Printf.sprintf "unsupported journal version %d (know %d)" version
               Obs.Journal.version));
       raise Exit
     end;
     if String.length data < 9 then begin
       add (err ~file "V403" "truncated header: missing header CRC");
       raise Exit
     end;
     let stored_header =
       let b i = Char.code data.[5 + i] in
       b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
     in
     if stored_header <> Obs.Journal.crc32 (String.sub data 0 5) then begin
       add (err ~file "V404" "header CRC mismatch: header cannot be trusted");
       raise Exit
     end;
     let len_data = String.length data in
     let pos = ref 9 in
     let frame = ref 0 in
     let read_varint what =
       let rec loop shift acc =
         if !pos >= len_data then begin
           add
             (err ~file "V403"
                (Printf.sprintf "truncated journal: %s cut off at byte %d" what
                   !pos));
           raise Exit
         end;
         if shift > 56 then begin
           add
             (err ~file "V408"
                (Printf.sprintf "%s: varint longer than 8 bytes at byte %d"
                   what !pos));
           raise Exit
         end;
         let b = Char.code data.[!pos] in
         incr pos;
         let acc = acc lor ((b land 0x7f) lsl shift) in
         if acc < 0 then begin
           add
             (err ~file "V408"
                (Printf.sprintf "%s: varint overflows at byte %d" what !pos));
           raise Exit
         end;
         if b land 0x80 = 0 then acc else loop (shift + 7) acc
       in
       loop 0 0
     in
     (* Three simulated clocks (annotate, transmit, playback) plus the
        session markers: each pipeline stage replays its own clock, and
        one process may run a stage several times (a quality sweep
        annotates once per level), so timestamps are required monotone
        within each contiguous run of same-phase events; a phase change
        or a Session_start starts a fresh clock. *)
     let last_phase = ref (-1) in
     let last_t = ref (-1) in
     while !pos < len_data do
       let offset = !pos in
       let len = read_varint (Printf.sprintf "frame %d length" !frame) in
       if len > max_journal_frame then begin
         add
           (err ~file "V408"
              (Printf.sprintf
                 "frame %d (byte %d): implausible frame length %d (cap %d); \
                  refusing to walk further"
                 !frame offset len max_journal_frame));
         raise Exit
       end;
       if !pos + len + 4 > len_data then begin
         add
           (err ~file "V403"
              (Printf.sprintf
                 "truncated journal: frame %d (byte %d) needs %d byte(s), %d \
                  left"
                 !frame offset (len + 4) (len_data - !pos)));
         raise Exit
       end;
       let payload = String.sub data !pos len in
       pos := !pos + len;
       let stored =
         let b i = Char.code data.[!pos + i] in
         b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
       in
       pos := !pos + 4;
       if stored <> Obs.Journal.crc32 payload then
         add
           (err ~file "V405"
              (Printf.sprintf "frame %d (byte %d): frame CRC mismatch" !frame
                 offset))
       else begin
         match Obs.Journal.parse_payload payload with
         | Error msg ->
           add
             (err ~file "V407"
                (Printf.sprintf "frame %d (byte %d): %s" !frame offset msg))
         | Ok event ->
           (match event.Obs.Journal.kind with
           | Obs.Journal.Session_start _ | Obs.Journal.Fleet_shard_start _ ->
             last_phase := -1
           | _ -> ());
           let ph = Obs.Journal.phase event.Obs.Journal.kind in
           let t_us = event.Obs.Journal.t_us in
           if ph <> !last_phase then begin
             last_phase := ph;
             last_t := -1
           end;
           if t_us < !last_t then
             add
               (err ~file "V406"
                  (Printf.sprintf
                     "frame %d (byte %d): timestamp %dus runs backwards \
                      within phase %d (last %dus)"
                     !frame offset t_us ph !last_t));
           if t_us > !last_t then last_t := t_us
       end;
       incr frame
     done
   with Exit -> ());
  List.sort Diagnostic.compare !diags

(* --- dispatch ---------------------------------------------------------- *)

let check_file ?find_device ?known path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> [ err ~file:path "V001" msg ]
  | contents ->
    if Filename.check_suffix path ".slo" then
      check_slo ?known ~file:path contents
    else if Filename.check_suffix path ".fault" then
      check_fault ~file:path contents
    else if Filename.check_suffix path ".resilience" then
      check_resilience ~file:path contents
    else if Filename.check_suffix path ".journal" then
      check_journal ~file:path contents
    else check_annotation ?find_device ~file:path contents
