(** Determinism linter over the repository's own OCaml sources.

    DESIGN.md §8 argues that every run must be a pure function of its
    inputs — that is what lets a client trust an annotation stream it
    did not compute. This linter turns that argument from convention
    into tooling: it parses each source file with the compiler's own
    front end (no type-checking, so it runs on a lone file in
    microseconds) and walks the AST for constructs that smuggle
    nondeterminism, swallow failures, or bypass the observability
    layer.

    Rules (stable codes, see the README "Static checks" table):

    - [L001] ambient clock read ([Unix.gettimeofday], [Unix.time],
      [Sys.time]) — all wall-clock access goes through the
      [Obs.Clock] shim so simulations stay replayable.
    - [L002] ambient randomness ([Random.self_init] or the global
      [Random.int]/[float]/[bool]/[bits]) — seeded [Image.Prng] or an
      explicit [Random.State] only.
    - [L003] [Hashtbl.fold]/[Hashtbl.iter] whose result is not
      locally sorted — hash order is seed-dependent and must never
      reach output. Folds piped into [List.sort]-family calls within
      the same expression are exempt.
    - [L004] exception swallowing: a [try … with] case whose pattern
      is [_] and whose handler does not re-raise.
    - [L005] direct console output in [lib/] ([Printf.printf],
      [print_endline], [prerr_*], [Format.printf], …) — library code
      reports through [Obs.Log] sinks, never a hard-wired channel.
    - [L006] a [lib/] module without an [.mli] — every library module
      states its contract.
    - [L007] [=] or [<>] on operands that are syntactically
      floating-point (float literal, float arithmetic, a known
      float-returning function) — exact float equality is
      representation-dependent.
    - [L008] a [(* lint: … *)] control comment that is malformed or
      suppresses without a reason.
    - [L009] [Domain.spawn] anywhere but [lib/par] — ad-hoc domains
      bypass the pool's deterministic chunking; all parallelism goes
      through [Par.Pool].
    - [L010] [Power.Meter.create]/[measure]/[measure_trace] anywhere
      but [lib/power] or [lib/obs] — energy accounting flows through
      the instrumented meter sites so [Obs.Profile] attributes every
      joule; ad-hoc meters produce readings the profiler never sees.
    - [L011] [Obs.Journal.record]/[record_in] anywhere but [lib/obs],
      the sanctioned hook sites ([lib/streaming/session.ml],
      [playback.ml], [transport.ml], [fault.ml],
      [lib/annot/annotator.ml]) and the resilience decision modules
      ([lib/resilience/breaker.ml], [degrade.ml], [bulkhead.ml]) — the
      decision journal is a closed event vocabulary emitted from
      reviewed hooks; ad-hoc emission would degrade it into an
      unauditable printf log.
    - [L012] [Resilience.Breaker.allow]/[record] or
      [Resilience.Degrade.note] anywhere but [lib/resilience] and the
      sanctioned streaming integration sites
      ([lib/streaming/session.ml], [transport.ml], [server.ml],
      [proxy.ml]) — breaker trips and ladder descents are journaled
      control-plane decisions; mutating their state from arbitrary
      code would bend a breaker open (or fake a rung) without an
      auditable trace.

    Suppression: [(* lint: allow L00n <reason> *)] on the same line as
    the finding, or on the line above it, silences that code there.
    The reason is mandatory — a bare allow is itself an [L008]. [L008]
    cannot be suppressed. *)

type rule = {
  code : string;
  title : string;  (** short name for the README table *)
  lib_only : bool;  (** enforced only under [lib/] *)
}

val rules : rule list
(** Every rule the linter knows, in code order. *)

val concurrency_codes : string list
(** The C-rule codes owned by {!Concurrency}. Listed here because the
    [lint: allow] grammar is parsed by this module and must accept
    both families. *)

val clock_idents : string list
(** The ambient-clock entry points L001 flags; {!Callgraph} reuses the
    list for the transitive closure. *)

val random_idents : string list
(** The ambient-RNG entry points L002 flags; {!Callgraph} reuses the
    list for the transitive closure. *)

(** {1 Parsed sources}

    Every lint pass (per-file rules, call graph, concurrency) shares
    one parse per file: [load_file]/[of_string] builds a {!source}
    carrying the AST, the comments, and the parsed suppression
    comments; the passes consume it without re-lexing. *)

type suppression = {
  s_code : string;  (** rule being allowed *)
  s_first : int;  (** first line the suppression covers *)
  s_last : int;  (** last comment line; coverage extends one further *)
  s_reason : string;  (** mandatory justification text *)
}

type source = {
  src_path : string;
  src_in_lib : bool;
  src_in_par : bool;
  src_in_power : bool;
  src_in_journal : bool;
  src_in_resilience : bool;
  src_has_mli : bool;
  src_ast : Parsetree.structure option;
      (** [None] when the file failed to parse *)
  src_comments : (string * Location.t) list;
  src_suppressions : suppression list;
  src_comment_diags : Check.Diagnostic.t list;  (** L008 findings *)
  src_parse_diags : Check.Diagnostic.t list;  (** L000 findings *)
}

val of_string : ?in_lib:bool -> ?in_par:bool -> ?in_power:bool ->
  ?in_journal:bool -> ?in_resilience:bool -> ?has_mli:bool -> path:string ->
  string -> source
(** Parse a source text into a {!source} without touching the
    filesystem. The optional flags default from [path] exactly as in
    {!lint_source}. *)

val load_file : ?in_lib:bool -> string -> source
(** Read and parse [path]; [has_mli] is taken from the filesystem. An
    unreadable file yields a source whose [src_parse_diags] carry a
    single [L000]. *)

val lint_parsed : source -> Check.Diagnostic.t list
(** Run the per-file rules (the L-family) over an already-parsed
    source: AST pass, L006, comment diagnostics, suppression
    filtering, sorted output. *)

val is_allowed : source -> code:string -> line:int -> bool
(** Whether a reasoned [lint: allow code] suppression covers [line].
    [L008] is never allowed. Cross-pass rules (transitive effects,
    C-rules) use this to honor the same grammar. *)

type allow = {
  a_code : string;
  a_file : string;
  a_line : int;
  a_reason : string;
}

val allows : source -> allow list
(** Every reasoned suppression in the file, sorted — the audit feed
    behind [lint sources --list-allows]. *)

val filter_suppressed : source -> Check.Diagnostic.t list ->
  Check.Diagnostic.t list
(** Drop diagnostics covered by the file's suppressions and sort the
    remainder with {!Check.Diagnostic.compare}. *)

val lint_source : ?in_lib:bool -> ?in_par:bool -> ?in_power:bool ->
  ?in_journal:bool -> ?in_resilience:bool -> ?has_mli:bool -> path:string ->
  string -> Check.Diagnostic.t list
(** [lint_source ~path contents] lints a source text without touching
    the filesystem. [in_lib] (default: [path] is under a [lib/]
    directory) gates the lib-only rules; [in_par] (default: [path] is
    under [lib/par]) exempts the pool itself from L009; [in_power]
    (default: [path] is under [lib/power] or [lib/obs]) exempts the
    meter and the profiler themselves from L010; [in_journal]
    (default: [path] is under [lib/obs] or ends with one of the
    sanctioned hook files) exempts the journal and its reviewed hook
    sites from L011; [in_resilience] (default: [path] is under
    [lib/resilience] or ends with one of the sanctioned streaming
    integration files) exempts the control plane and its reviewed
    integration sites from L012; [has_mli] (default [true], so L006
    stays quiet) tells the linter whether a sibling interface exists.
    An unparsable file yields a single [L000] error. Results are
    sorted with {!Check.Diagnostic.compare}. *)

val lint_file : ?in_lib:bool -> string -> Check.Diagnostic.t list
(** [lint_file path] reads [path] and lints it; [has_mli] is taken
    from the filesystem. An unreadable file yields a single [L000]
    error. *)

val ml_files_under : string -> string list
(** [ml_files_under path] is [path] itself for a regular [.ml] file,
    or every [.ml] file below a directory, sorted, skipping [_build]
    and dot-directories — the file set [lint sources] runs on. *)
