module Diagnostic = Check.Diagnostic

(* Static concurrency-safety pass (the C-rules). Works on the shared
   parsed sources plus the cross-module call graph:

   - C001  module-level mutable state (mutable fields, [ref]/
           [Hashtbl.t]/[Queue.t]/[Buffer.t] containers) in a
           par-linked library must be [Atomic.t] or carry a
           [(* guarded_by: <mutex> *)] / [(* owned_by: <reason> *)]
           annotation.
   - C002  a [guarded_by] field accessed in a region that does not
           hold its mutex (the double-checked-locking gate).
   - C003  a raw [Mutex.lock] with no matching [Mutex.unlock] in the
           same top-level binding.
   - C004  a blocking operation — acquiring another lock, waiting on
           a foreign condition, [Domain.join], or any call that
           transitively reaches one — while already holding a lock.
   - C005  a cycle in the lock-order graph (mutex A held while B is
           acquired on one path, B held while A is acquired on
           another).
   - C006  [Domain]/[Atomic]/[Mutex]/[Condition] primitives outside
           the sanctioned modules.

   Lock regions are tracked through raw lock/unlock pairs,
   [Mutex.protect], and per-file lock-helper inference: a top-level
   function whose body starts with [Mutex.lock] on its first
   parameter (server-style [with_lock m f]) or on a field of it
   (registry-style [with_lock t f], which locks [t.mutex]) is a
   helper, and closures passed to it are walked holding the token.
   Held-set merging is by intersection over non-diverging branches;
   a branch that ends in [raise]/[failwith]/[invalid_arg] is excluded
   (the pool's early-exit unlock pattern). [Condition.wait] on a held
   mutex is the sanctioned wait idiom and is exempt from C004.

   Everything here is an over-approximation in the same spirit as the
   L-rules: no types, no aliasing, tokens are the last path component
   of the mutex expression (file-qualified in the lock-order graph).
   Findings that reflect a deliberate design (journaling under the
   admission lock, profiling under the clip lock) carry reasoned
   [lint: allow] suppressions at the site. *)

type rule = Lint.rule = { code : string; title : string; lib_only : bool }

let rules =
  [
    { code = "C001"; title = "unguarded module-level mutable state"; lib_only = true };
    { code = "C002"; title = "guarded field accessed without its mutex"; lib_only = false };
    { code = "C003"; title = "lock not released on every path"; lib_only = false };
    { code = "C004"; title = "blocking operation while holding a lock"; lib_only = false };
    { code = "C005"; title = "lock-order cycle"; lib_only = false };
    { code = "C006"; title = "concurrency primitive outside sanctioned modules"; lib_only = false };
  ]

(* --- scopes ------------------------------------------------------------ *)

let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

(* Libraries whose code runs on pool domains: the pool itself, the
   server tier that fans out on it, the annotation pipeline it maps
   over, and the obs/resilience singletons every domain touches. *)
let par_linked_dirs =
  [ "lib/par/"; "lib/streaming/"; "lib/obs/"; "lib/resilience/"; "lib/annot/" ]

(* Where raw Domain/Atomic/Mutex/Condition primitives may appear.
   Everything else goes through Par.Pool / Obs / Resilience. *)
let sanctioned_primitive_dirs = [ "lib/par/"; "lib/obs/"; "lib/resilience/" ]

let sanctioned_primitive_files = [ "lib/streaming/server.ml" ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let par_linked path =
  let p = normalize path in
  List.exists (fun d -> contains ~needle:d p) par_linked_dirs

let primitives_sanctioned path =
  let p = normalize path in
  List.exists (fun d -> contains ~needle:d p) sanctioned_primitive_dirs
  || List.exists
       (fun f -> String.ends_with ~suffix:f p)
       sanctioned_primitive_files

let primitive_modules = [ "Domain"; "Atomic"; "Mutex"; "Condition" ]

let mutable_ctors = [ "ref"; "Hashtbl.create"; "Queue.create"; "Buffer.create" ]

let container_types = [ "ref"; "Hashtbl.t"; "Queue.t"; "Buffer.t" ]

let blocking_leaves =
  [ "Mutex.lock"; "Mutex.protect"; "Condition.wait"; "Domain.join" ]

(* --- small AST helpers ------------------------------------------------- *)

let rec lid_parts = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> lid_parts l @ [ s ]
  | Longident.Lapply _ -> []

let last = function [] -> "?" | l -> List.nth l (List.length l - 1)

let ident_parts (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> (
    match lid_parts txt with [] -> None | parts -> Some parts)
  | _ -> None

let ident_name e = Option.map (String.concat ".") (ident_parts e)

let line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let positional args =
  List.filter_map
    (fun (lbl, a) -> match lbl with Asttypes.Nolabel -> Some a | _ -> None)
    args

(* The last path component of a mutex expression is its token:
   [stored.lock] and [t.cache_lock] name the mutex well enough for a
   per-file discipline check. Unknown shapes collapse to "?" — still
   tracked as "some lock held", never matched by name. *)
let rec mutex_token (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> last (lid_parts txt)
  | Parsetree.Pexp_field (_, { txt; _ }) -> last (lid_parts txt)
  | Parsetree.Pexp_constraint (inner, _) | Parsetree.Pexp_open (_, inner) ->
    mutex_token inner
  | _ -> "?"

let strip_delims text =
  let text =
    if String.length text >= 2 && String.sub text 0 2 = "(*" then
      String.sub text 2 (String.length text - 2)
    else text
  in
  let text =
    if String.length text >= 2
       && String.sub text (String.length text - 2) 2 = "*)"
    then String.sub text 0 (String.length text - 2)
    else text
  in
  String.trim text

(* --- guarded_by / owned_by annotations --------------------------------- *)

type annot_kind = Guarded of string | Owned

type annot = { n_kind : annot_kind; n_first : int; n_last : int }

(* The token is the leading identifier-ish run: a trailing comma or
   semicolon in prose ("guarded_by: mutex, newest first") is not part
   of the mutex name. *)
let first_word s =
  let s = String.trim s in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\'' || c = '.'
  in
  let n = String.length s in
  let rec stop i = if i < n && is_ident s.[i] then stop (i + 1) else i in
  match stop 0 with 0 -> None | k -> Some (String.sub s 0 k)

let parse_annots (src : Lint.source) =
  List.filter_map
    (fun (text, (loc : Location.t)) ->
      let body = strip_delims text in
      let first, _ = line_col loc in
      let n_last = loc.Location.loc_end.Lexing.pos_lnum in
      if String.starts_with ~prefix:"guarded_by:" body then
        let rest = String.sub body 11 (String.length body - 11) in
        Option.map
          (fun tok -> { n_kind = Guarded tok; n_first = first; n_last })
          (first_word rest)
      else if String.starts_with ~prefix:"owned_by:" body then
        let rest = String.sub body 9 (String.length body - 9) in
        Option.map
          (fun _ -> { n_kind = Owned; n_first = first; n_last })
          (first_word rest)
      else None)
    src.Lint.src_comments

(* An annotation attaches to the declaration on its own first line
   (trailing style), directly below its last line (leading style), or
   directly above its first line (continuation style) — but a comment
   that *starts* on some declaration's line belongs to that
   declaration alone, so a trailing [guarded_by] never bleeds onto
   the next field. [decl_lines] is the set of lines any field or
   top-level let starts on. *)
let annot_covering annots ~decl_lines line =
  List.find_opt
    (fun n ->
      n.n_first = line
      || ((not (Hashtbl.mem decl_lines n.n_first))
         && (n.n_last + 1 = line || n.n_first = line + 1)))
    annots

(* --- module-level state survey (C001) ---------------------------------- *)

let rec type_head (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Parsetree.Ptyp_constr ({ txt; _ }, _) ->
    Some (String.concat "." (lid_parts txt))
  | Parsetree.Ptyp_alias (inner, _) -> type_head inner
  | _ -> None

let is_atomic t = type_head t = Some "Atomic.t"

let is_container t =
  match type_head t with
  | Some h -> List.mem h container_types
  | None -> false

type field_info = {
  fi_name : string;
  fi_line : int;
  fi_col : int;
  fi_offending : bool;
}

type record_info = { ri_header : int; ri_fields : field_info list }

let record_infos ast =
  let records = ref [] in
  let typ (decl : Parsetree.type_declaration) =
    match decl.ptype_kind with
    | Parsetree.Ptype_record labels ->
      let header, _ = line_col decl.ptype_loc in
      let fields =
        List.map
          (fun (l : Parsetree.label_declaration) ->
            let line, col = line_col l.pld_loc in
            {
              fi_name = l.pld_name.txt;
              fi_line = line;
              fi_col = col;
              fi_offending =
                (not (is_atomic l.pld_type))
                && (l.pld_mutable = Asttypes.Mutable
                   || is_container l.pld_type);
            })
          labels
      in
      records := { ri_header = header; ri_fields = fields } :: !records
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration = (fun _ decl -> typ decl);
    }
  in
  it.structure it ast;
  List.rev !records

(* Top-level (structure-level, including submodules) lets whose RHS is
   a mutable container constructor. *)
type toplet_info = { tl_name : string; tl_line : int; tl_col : int }

let toplet_infos ast =
  let lets = ref [] in
  let rec rhs_is_mutable (e : Parsetree.expression) =
    match e.pexp_desc with
    | Parsetree.Pexp_apply (f, _) -> (
      match ident_name f with
      | Some n -> List.mem n mutable_ctors
      | None -> false)
    | Parsetree.Pexp_constraint (inner, _) -> rhs_is_mutable inner
    | _ -> false
  in
  let rec item (i : Parsetree.structure_item) =
    match i.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } when rhs_is_mutable vb.pvb_expr ->
            let line, col = line_col vb.pvb_loc in
            lets := { tl_name = txt; tl_line = line; tl_col = col } :: !lets
          | _ -> ())
        vbs
    | Parsetree.Pstr_module mb -> module_binding mb
    | Parsetree.Pstr_recmodule mbs -> List.iter module_binding mbs
    | _ -> ()
  and module_binding (mb : Parsetree.module_binding) =
    let rec peel (me : Parsetree.module_expr) =
      match me.pmod_desc with
      | Parsetree.Pmod_constraint (inner, _) -> peel inner
      | d -> d
    in
    match peel mb.pmb_expr with
    | Parsetree.Pmod_structure items -> List.iter item items
    | _ -> ()
  in
  List.iter item ast;
  List.rev !lets

(* --- lock-helper inference --------------------------------------------- *)

type helper =
  | Arg_mutex  (** [with_lock m f]: locks its first parameter *)
  | Field_mutex of string  (** [with_lock t f]: locks a field of it *)
  | Global_mutex of string  (** [with_lock f]: locks a module-level mutex *)

let rec peel_funs (e : Parsetree.expression) params =
  match e.pexp_desc with
  | Parsetree.Pexp_fun (_, _, pat, body) -> (
    match pat.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } -> peel_funs body (txt :: params)
    | _ -> peel_funs body ("_" :: params))
  | _ -> (List.rev params, e)

let infer_helpers ast =
  let helpers = Hashtbl.create 4 in
  let rec item (i : Parsetree.structure_item) =
    match i.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Parsetree.Ppat_var { txt = name; _ } -> (
            let params, body = peel_funs vb.pvb_expr [] in
            match (params, body.pexp_desc) with
            | ( p0 :: rest,
                Parsetree.Pexp_sequence ({ pexp_desc = Parsetree.Pexp_apply (f, args); _ }, _) )
              when ident_name f = Some "Mutex.lock" -> (
              match positional args with
              | [ { pexp_desc = Parsetree.Pexp_ident { txt = Longident.Lident p; _ }; _ } ]
                when p = p0 && rest <> [] ->
                Hashtbl.replace helpers name Arg_mutex
              | [
               {
                 pexp_desc =
                   Parsetree.Pexp_field
                     ( { pexp_desc = Parsetree.Pexp_ident { txt = Longident.Lident p; _ }; _ },
                       { txt = fld; _ } );
                 _;
               };
              ]
                when p = p0 && rest <> [] ->
                Hashtbl.replace helpers name (Field_mutex (last (lid_parts fld)))
              | [ m ] when not (List.mem (mutex_token m) (p0 :: rest)) ->
                Hashtbl.replace helpers name (Global_mutex (mutex_token m))
              | _ -> ())
            | _ -> ())
          | _ -> ())
        vbs
    | Parsetree.Pstr_module mb -> module_binding mb
    | Parsetree.Pstr_recmodule mbs -> List.iter module_binding mbs
    | _ -> ()
  and module_binding (mb : Parsetree.module_binding) =
    let rec peel (me : Parsetree.module_expr) =
      match me.pmod_desc with
      | Parsetree.Pmod_constraint (inner, _) -> peel inner
      | d -> d
    in
    match peel mb.pmb_expr with
    | Parsetree.Pmod_structure items -> List.iter item items
    | _ -> ()
  in
  List.iter item ast;
  helpers

(* --- the per-def walk -------------------------------------------------- *)

type pending = {
  p_def : string;  (* node id of the holder *)
  p_held : (string * string) list;  (* (file, token) held at the call *)
  p_target : string;  (* node id of the callee *)
  p_display : string;
  p_line : int;
  p_col : int;
  p_file : string;
}

type state = {
  st_graph : Callgraph.t;
  st_diags : Diagnostic.t list ref;
  st_pending : pending list ref;
  st_acquires : (string, (string * string) list ref) Hashtbl.t;
  st_edges :
    ((string * string) * (string * string) * (string * int)) list ref;
      (* (held, acquired, site) *)
}

let emit st ~code ~file ~line ~col message =
  st.st_diags :=
    Diagnostic.v ~code ~severity:Diagnostic.Error ~file ~line ~col message
    :: !(st.st_diags)

let add_acquire st def_id tok =
  match Hashtbl.find_opt st.st_acquires def_id with
  | Some l -> if not (List.mem tok !l) then l := tok :: !l
  | None -> Hashtbl.add st.st_acquires def_id (ref [ tok ])

let intersect a b = List.filter (fun x -> List.mem x b) a

let diverging_ident = function
  | Some ("raise" | "raise_notrace" | "failwith" | "invalid_arg") -> true
  | _ -> false

type defctx = {
  dc_state : state;
  dc_file : string;
  dc_id : string;
  dc_is_helper : bool;
  dc_helpers : (string, helper) Hashtbl.t;
  dc_guarded : (string, string) Hashtbl.t;  (* field name -> token *)
  dc_guarded_lets : (string, string) Hashtbl.t;  (* top-level let -> token *)
  dc_seen : (string, unit) Hashtbl.t;  (* per-def dedup keys *)
  dc_locks : (string, int ref * int ref * (int * int)) Hashtbl.t;
}

let once dc key f = if not (Hashtbl.mem dc.dc_seen key) then begin
    Hashtbl.add dc.dc_seen key ();
    f ()
  end

let prim_check dc name (loc : Location.t) =
  match String.index_opt name '.' with
  | Some i
    when List.mem (String.sub name 0 i) primitive_modules
         && not (primitives_sanctioned dc.dc_file) ->
    let line, col = line_col loc in
    emit dc.dc_state ~code:"C006" ~file:dc.dc_file ~line ~col
      (Printf.sprintf
         "%s is a raw concurrency primitive outside the sanctioned modules \
          (lib/par, lib/obs, lib/resilience, the server); route through \
          Par.Pool or the obs/resilience wrappers"
         name)
  | _ -> ()

let guarded_check_in dc table held name (loc : Location.t) =
  match Hashtbl.find_opt table name with
  | Some tok when not (List.mem tok held) ->
    once dc ("C002:" ^ name) (fun () ->
        let line, col = line_col loc in
        emit dc.dc_state ~code:"C002" ~file:dc.dc_file ~line ~col
          (Printf.sprintf
             "%s is declared guarded_by %s but is accessed here without \
              holding it; take the mutex (or move the access inside the \
              locked region)"
             name tok))
  | _ -> ()

(* Field accesses check the field table; bare identifiers check only
   the top-level-let table — a bare ident that happens to share a
   guarded field's name is a shadowing local or parameter, not the
   field. *)
let guarded_check dc held name loc = guarded_check_in dc dc.dc_guarded held name loc

let guarded_let_check dc held name loc =
  guarded_check_in dc dc.dc_guarded_lets held name loc

let count_lock dc tok (loc : Location.t) =
  let site = line_col loc in
  match Hashtbl.find_opt dc.dc_locks tok with
  | Some (l, _, _) -> incr l
  | None -> Hashtbl.add dc.dc_locks tok (ref 1, ref 0, site)

let count_unlock dc tok =
  match Hashtbl.find_opt dc.dc_locks tok with
  | Some (_, u, _) -> incr u
  | None -> Hashtbl.add dc.dc_locks tok (ref 0, ref 1, (0, 0))

let acquire_while_held dc held tok (loc : Location.t) =
  let line, col = line_col loc in
  if held <> [] then begin
    once dc ("C004:acq:" ^ tok) (fun () ->
        emit dc.dc_state ~code:"C004" ~file:dc.dc_file ~line ~col
          (Printf.sprintf
             "acquires %s while already holding %s; nested acquisition \
              blocks and risks lock-order inversion — narrow the outer \
              region or document the ordering with an allow"
             tok
             (String.concat ", " held)));
    List.iter
      (fun h ->
        dc.dc_state.st_edges :=
          ( (dc.dc_file, h),
            (dc.dc_file, tok),
            (dc.dc_file, line) )
          :: !(dc.dc_state.st_edges))
      held
  end;
  if not dc.dc_is_helper then add_acquire dc.dc_state dc.dc_id (dc.dc_file, tok)

let internal_target dc parts (loc : Location.t) =
  let line = fst (line_col loc) in
  let callee_last = last parts in
  Callgraph.callees dc.dc_state.st_graph dc.dc_id
  |> List.find_map (fun (c, l) ->
         match c with
         | Callgraph.Internal id when l = line ->
           let dn = Callgraph.display_name id in
           let dn_last = last (String.split_on_char '.' dn) in
           if dn_last = callee_last then Some id else None
         | _ -> None)

let closure_body (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_fun (_, _, _, body) -> Some body
  | Parsetree.Pexp_function _ -> Some e
  | _ -> None

(* walk returns (held-after, diverges). [held] is a list of short
   tokens; the enclosing file qualifies them in the lock-order
   graph. *)
let rec walk dc held (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_ident { txt; loc } ->
    let name = String.concat "." (lid_parts txt) in
    prim_check dc name loc;
    (match lid_parts txt with
    | [ one ] -> guarded_let_check dc held one loc
    | _ -> ());
    (held, false)
  | Parsetree.Pexp_field (inner, { txt; loc }) ->
    guarded_check dc held (last (lid_parts txt)) loc;
    let held, _ = walk dc held inner in
    (held, false)
  | Parsetree.Pexp_setfield (inner, { txt; loc }, value) ->
    guarded_check dc held (last (lid_parts txt)) loc;
    let held, _ = walk dc held inner in
    let held, _ = walk dc held value in
    (held, false)
  | Parsetree.Pexp_apply (f, args) -> walk_apply dc held e f args
  | Parsetree.Pexp_sequence (a, b) ->
    let held, da = walk dc held a in
    let held, db = walk dc held b in
    (held, da || db)
  | Parsetree.Pexp_let (rf, vbs, body) ->
    ignore rf;
    let held =
      List.fold_left
        (fun h (vb : Parsetree.value_binding) -> fst (walk dc h vb.pvb_expr))
        held vbs
    in
    walk dc held body
  | Parsetree.Pexp_ifthenelse (cond, then_, else_) ->
    let held, _ = walk dc held cond in
    let ht, dt = walk dc held then_ in
    let he, de =
      match else_ with Some e -> walk dc held e | None -> (held, false)
    in
    if dt && de then (held, true)
    else if dt then (he, false)
    else if de then (ht, false)
    else (intersect ht he, false)
  | Parsetree.Pexp_match (scrut, cases) | Parsetree.Pexp_try (scrut, cases) ->
    let held, _ = walk dc held scrut in
    let results =
      List.map
        (fun (case : Parsetree.case) ->
          (match case.pc_guard with
          | Some g -> ignore (walk dc held g)
          | None -> ());
          walk dc held case.pc_rhs)
        cases
    in
    let live = List.filter (fun (_, d) -> not d) results in
    if live = [] then (held, cases <> [])
    else
      ( List.fold_left (fun acc (h, _) -> intersect acc h) (fst (List.hd live)) (List.tl live),
        false )
  | Parsetree.Pexp_function cases ->
    List.iter
      (fun (case : Parsetree.case) ->
        (match case.pc_guard with
        | Some g -> ignore (walk dc held g)
        | None -> ());
        ignore (walk dc held case.pc_rhs))
      cases;
    (held, false)
  | Parsetree.Pexp_fun (_, default, _, body) ->
    Option.iter (fun d -> ignore (walk dc held d)) default;
    ignore (walk dc held body);
    (held, false)
  | Parsetree.Pexp_while (cond, body) ->
    ignore (walk dc held cond);
    ignore (walk dc held body);
    (held, false)
  | Parsetree.Pexp_for (_, e1, e2, _, body) ->
    ignore (walk dc held e1);
    ignore (walk dc held e2);
    ignore (walk dc held body);
    (held, false)
  | Parsetree.Pexp_constraint (inner, _)
  | Parsetree.Pexp_open (_, inner)
  | Parsetree.Pexp_letmodule (_, _, inner) ->
    walk dc held inner
  | Parsetree.Pexp_assert { pexp_desc = Parsetree.Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ } ->
    (held, true)
  | _ ->
    (* Shallow default: walk immediate subexpressions with the current
       held set; their lock effects do not escape. *)
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ child -> ignore (walk dc held child));
      }
    in
    Ast_iterator.default_iterator.expr it e;
    (held, false)

and walk_apply dc held e f args =
  let name = ident_name f in
  let pos = positional args in
  let walk_all held exprs =
    List.fold_left (fun h a -> fst (walk dc h a)) held exprs
  in
  let walk_labelled_only () =
    List.iter
      (fun (lbl, a) ->
        match lbl with
        | Asttypes.Nolabel -> ()
        | _ -> ignore (walk dc held a))
      args
  in
  ignore walk_labelled_only;
  match name with
  | Some n when diverging_ident name ->
    ignore n;
    ignore (walk_all held pos);
    (held, true)
  | Some "Mutex.lock" -> (
    prim_check dc "Mutex.lock" f.pexp_loc;
    match pos with
    | m :: _ ->
      let tok = mutex_token m in
      ignore (walk dc held m);
      acquire_while_held dc held tok e.pexp_loc;
      count_lock dc tok e.pexp_loc;
      ((if List.mem tok held then held else tok :: held), false)
    | [] -> (held, false))
  | Some "Mutex.unlock" -> (
    prim_check dc "Mutex.unlock" f.pexp_loc;
    match pos with
    | m :: _ ->
      let tok = mutex_token m in
      ignore (walk dc held m);
      count_unlock dc tok;
      (List.filter (fun t -> t <> tok) held, false)
    | [] -> (held, false))
  | Some "Mutex.protect" -> (
    prim_check dc "Mutex.protect" f.pexp_loc;
    match pos with
    | m :: rest ->
      let tok = mutex_token m in
      ignore (walk dc held m);
      acquire_while_held dc held tok e.pexp_loc;
      List.iter
        (fun arg ->
          match closure_body arg with
          | Some body -> ignore (walk dc (tok :: held) body)
          | None -> ignore (walk dc held arg))
        rest;
      (held, false)
    | [] -> (held, false))
  | Some "Condition.wait" ->
    prim_check dc "Condition.wait" f.pexp_loc;
    (match pos with
    | [ _; m ] ->
      let tok = mutex_token m in
      if (not (List.mem tok held)) && held <> [] then
        once dc ("C004:wait:" ^ tok) (fun () ->
            let line, col = line_col e.pexp_loc in
            emit dc.dc_state ~code:"C004" ~file:dc.dc_file ~line ~col
              (Printf.sprintf
                 "Condition.wait on %s while holding %s; waiting releases \
                  only its own mutex, so the held lock blocks every peer \
                  until the wait returns"
                 tok
                 (String.concat ", " held)))
    | _ -> ());
    ignore (walk_all held pos);
    (held, false)
  | Some "Domain.join" ->
    prim_check dc "Domain.join" f.pexp_loc;
    if held <> [] then
      once dc "C004:join" (fun () ->
          let line, col = line_col e.pexp_loc in
          emit dc.dc_state ~code:"C004" ~file:dc.dc_file ~line ~col
            (Printf.sprintf
               "Domain.join while holding %s blocks the lock for the \
                joined domain's entire remaining runtime"
               (String.concat ", " held)));
    ignore (walk_all held pos);
    (held, false)
  | Some n when (match ident_parts f with Some [ h ] -> Hashtbl.mem dc.dc_helpers h | _ -> false) -> (
    let helper =
      match ident_parts f with
      | Some [ h ] -> Hashtbl.find dc.dc_helpers h
      | _ -> assert false
    in
    ignore n;
    match helper with
    | Global_mutex tok ->
      acquire_while_held dc held tok e.pexp_loc;
      List.iter
        (fun arg ->
          match closure_body arg with
          | Some body -> ignore (walk dc (tok :: held) body)
          | None -> ignore (walk dc held arg))
        pos;
      (held, false)
    | Arg_mutex | Field_mutex _ -> (
      match pos with
      | m :: rest ->
        let tok =
          match helper with
          | Arg_mutex -> mutex_token m
          | Field_mutex fld -> fld
          | Global_mutex _ -> assert false
        in
        ignore (walk dc held m);
        acquire_while_held dc held tok e.pexp_loc;
        List.iter
          (fun arg ->
            match closure_body arg with
            | Some body -> ignore (walk dc (tok :: held) body)
            | None -> ignore (walk dc held arg))
          rest;
        (held, false)
      | [] -> (held, false)))
  | Some n ->
    prim_check dc n f.pexp_loc;
    (match ident_parts f with
    | Some [ one ] -> guarded_let_check dc held one f.pexp_loc
    | _ -> ());
    (* Pipe operators apply their function-side argument. *)
    (match (n, pos) with
    | "|>", [ _; g ] | "@@", [ g; _ ] -> (
      match ident_parts g with
      | Some gparts when held <> [] ->
        record_pending dc held gparts g.pexp_loc
      | _ -> ())
    | _ -> ());
    (match ident_parts f with
    | Some parts when held <> [] -> record_pending dc held parts f.pexp_loc
    | _ -> ());
    (* Arguments, including closures, are walked with the current held
       set (a lambda passed under a lock runs under that lock for all
       this pass can tell). *)
    ignore (walk_all held (List.map snd args));
    (held, false)
  | None ->
    ignore (walk dc held f);
    List.iter (fun (_, a) -> ignore (walk dc held a)) args;
    (held, false)

and record_pending dc held parts (loc : Location.t) =
  match internal_target dc parts loc with
  | Some target ->
    let line, col = line_col loc in
    dc.dc_state.st_pending :=
      {
        p_def = dc.dc_id;
        p_held = List.map (fun t -> (dc.dc_file, t)) held;
        p_target = target;
        p_display = String.concat "." parts;
        p_line = line;
        p_col = col;
        p_file = dc.dc_file;
      }
      :: !(dc.dc_state.st_pending)
  | None -> ()

(* --- per-source analysis ----------------------------------------------- *)

let rec binding_name (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> Some txt
  | Parsetree.Ppat_constraint (inner, _) -> binding_name inner
  | _ -> None

(* A field name maps to its mutex only when every guarded declaration
   of that name in the file agrees on the token and no other record
   declares the same name unguarded — name-keyed matching must not
   cross records with clashing vocabularies. *)
(* Every line on which a field or module-level container declaration
   starts: the annotation-attachment rules use it to keep a trailing
   comment from bleeding onto the next declaration. *)
let decl_lines_of records toplets =
  let lines = Hashtbl.create 16 in
  List.iter
    (fun r -> List.iter (fun fi -> Hashtbl.replace lines fi.fi_line ()) r.ri_fields)
    records;
  List.iter (fun tl -> Hashtbl.replace lines tl.tl_line ()) toplets;
  lines

let resolve_votes votes =
  let map = Hashtbl.create 8 in
  (* lint: allow L003 table-to-table seed, order-insensitive *)
  Hashtbl.iter
    (fun name entries ->
      match entries with
      | Some tok :: rest when List.for_all (fun e -> e = Some tok) rest ->
        Hashtbl.replace map name tok
      | _ -> ())
    votes;
  map

(* Two guard tables: record fields and top-level lets are looked up
   from different expression shapes, so a name maps to its mutex only
   within its own kind — and only when every guarded declaration of
   that name in the file agrees on the token and no declaration of the
   same name is unguarded. Name-keyed matching must not cross records
   with clashing vocabularies. *)
let guarded_maps annots ~decl_lines records toplets =
  let field_votes = Hashtbl.create 8 and let_votes = Hashtbl.create 8 in
  let vote votes name entry =
    let prev = Option.value (Hashtbl.find_opt votes name) ~default:[] in
    Hashtbl.replace votes name (entry :: prev)
  in
  List.iter
    (fun r ->
      List.iter
        (fun fi ->
          match annot_covering annots ~decl_lines fi.fi_line with
          | Some { n_kind = Guarded tok; _ } -> vote field_votes fi.fi_name (Some tok)
          | Some { n_kind = Owned; _ } -> vote field_votes fi.fi_name None
          | None -> if fi.fi_offending then vote field_votes fi.fi_name None)
        r.ri_fields)
    records;
  List.iter
    (fun tl ->
      match annot_covering annots ~decl_lines tl.tl_line with
      | Some { n_kind = Guarded tok; _ } -> vote let_votes tl.tl_name (Some tok)
      | _ -> vote let_votes tl.tl_name None)
    toplets;
  (resolve_votes field_votes, resolve_votes let_votes)

let survey_state st (src : Lint.source) annots ~decl_lines records toplets =
  if par_linked src.Lint.src_path then begin
    List.iter
      (fun r ->
        List.iter
          (fun fi ->
            if fi.fi_offending && annot_covering annots ~decl_lines fi.fi_line = None
            then
              emit st ~code:"C001" ~file:src.Lint.src_path ~line:fi.fi_line
                ~col:fi.fi_col
                (Printf.sprintf
                   "mutable field %s in a par-linked library has no \
                    concurrency story; make it Atomic.t, or annotate it \
                    (* guarded_by: <mutex> *) / (* owned_by: <reason> *)"
                   fi.fi_name))
          r.ri_fields)
      records;
    List.iter
      (fun tl ->
        if annot_covering annots ~decl_lines tl.tl_line = None then
          emit st ~code:"C001" ~file:src.Lint.src_path ~line:tl.tl_line
            ~col:tl.tl_col
            (Printf.sprintf
               "module-level mutable container %s in a par-linked library \
                has no concurrency story; make it Atomic.t, or annotate it \
                (* guarded_by: <mutex> *) / (* owned_by: <reason> *)"
               tl.tl_name))
      toplets
  end

let report_unbalanced dc =
  Hashtbl.fold (fun tok v acc -> (tok, v) :: acc) dc.dc_locks []
  |> List.sort compare
  |> List.iter (fun (tok, (locks, unlocks, (line, col))) ->
         if !locks > !unlocks && line > 0 then
           emit dc.dc_state ~code:"C003" ~file:dc.dc_file ~line ~col
             (Printf.sprintf
                "%s is locked %d time(s) but unlocked %d in this binding; \
                 release it on every path (Fun.protect, or unlock in each \
                 branch)"
                tok !locks !unlocks))

let analyze_source st (src : Lint.source) =
  match src.Lint.src_ast with
  | None -> ()
  | Some ast ->
    let file = normalize src.Lint.src_path in
    let annots = parse_annots src in
    let records = record_infos ast in
    let toplets = toplet_infos ast in
    let decl_lines = decl_lines_of records toplets in
    survey_state st src annots ~decl_lines records toplets;
    let helpers = infer_helpers ast in
    let guarded, guarded_lets = guarded_maps annots ~decl_lines records toplets in
    let walk_def name (vb : Parsetree.value_binding) =
      let line, _ = line_col vb.pvb_loc in
      let id =
        match Callgraph.def_at st.st_graph ~file ~line with
        | Some id -> id
        | None -> Callgraph.node_id file (Option.value name ~default:"(init)")
      in
      let dc =
        {
          dc_state = st;
          dc_file = file;
          dc_id = id;
          dc_is_helper =
            (match name with
            | Some n -> Hashtbl.mem helpers n
            | None -> false);
          dc_helpers = helpers;
          dc_guarded = guarded;
          dc_guarded_lets = guarded_lets;
          dc_seen = Hashtbl.create 8;
          dc_locks = Hashtbl.create 4;
        }
      in
      ignore (walk dc [] vb.pvb_expr);
      report_unbalanced dc
    in
    let rec item (i : Parsetree.structure_item) =
      match i.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
        List.iter (fun vb -> walk_def (binding_name vb.Parsetree.pvb_pat) vb) vbs
      | Parsetree.Pstr_eval (e, _) ->
        let line, _ = line_col i.pstr_loc in
        let id =
          match Callgraph.def_at st.st_graph ~file ~line with
          | Some id -> id
          | None -> Callgraph.node_id file (Printf.sprintf "(init:%d)" line)
        in
        let dc =
          {
            dc_state = st;
            dc_file = file;
            dc_id = id;
            dc_is_helper = false;
            dc_helpers = helpers;
            dc_guarded = guarded;
            dc_guarded_lets = guarded_lets;
            dc_seen = Hashtbl.create 8;
            dc_locks = Hashtbl.create 4;
          }
        in
        ignore (walk dc [] e);
        report_unbalanced dc
      | Parsetree.Pstr_module mb -> module_binding mb
      | Parsetree.Pstr_recmodule mbs -> List.iter module_binding mbs
      | _ -> ()
    and module_binding (mb : Parsetree.module_binding) =
      let rec peel (me : Parsetree.module_expr) =
        match me.pmod_desc with
        | Parsetree.Pmod_constraint (inner, _) -> peel inner
        | d -> d
      in
      match peel mb.pmb_expr with
      | Parsetree.Pmod_structure items -> List.iter item items
      | _ -> ()
    in
    List.iter item ast

(* --- blocked calls while holding a lock (C004 transitive) -------------- *)

let process_pending st =
  (* Fixpoint: the set of (file, token) locks a node acquires itself
     or through any internal call chain. Helper defs contributed no
     direct acquires (their tokens are parameter names), so only real
     acquisition sites flow. *)
  let ids = Callgraph.node_ids st.st_graph in
  let trans : (string, (string * string) list) Hashtbl.t =
    Hashtbl.create 64
  in
  (* lint: allow L003 table-to-table seed, order-insensitive *)
  Hashtbl.iter (fun id l -> Hashtbl.replace trans id !l) st.st_acquires;
  let get id = Option.value (Hashtbl.find_opt trans id) ~default:[] in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        let cur = get id in
        let merged =
          List.fold_left
            (fun acc (c, _) ->
              match c with
              | Callgraph.Internal cid ->
                List.fold_left
                  (fun acc t -> if List.mem t acc then acc else t :: acc)
                  acc (get cid)
              | Callgraph.External _ -> acc)
            cur
            (Callgraph.callees st.st_graph id)
        in
        if List.length merged <> List.length cur then begin
          Hashtbl.replace trans id merged;
          changed := true
        end)
      ids
  done;
  let pendings =
    List.sort
      (fun a b ->
        compare
          (a.p_file, a.p_line, a.p_col, a.p_target)
          (b.p_file, b.p_line, b.p_col, b.p_target))
      !(st.st_pending)
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let key = p.p_def ^ "|" ^ p.p_target in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let acquired =
          get p.p_target
          |> List.filter (fun ((_, tok) as t) ->
                 tok <> "?" && not (List.mem t p.p_held))
          |> List.sort compare
        in
        let held_names = List.map snd p.p_held |> List.sort_uniq compare in
        if acquired <> [] then begin
          emit st ~code:"C004" ~file:p.p_file ~line:p.p_line ~col:p.p_col
            (Printf.sprintf
               "calls %s, which acquires %s, while holding %s; the callee \
                can block (or invert lock order) under the held lock — \
                hoist the call out of the region or add a reasoned allow"
               p.p_display
               (String.concat ", " (List.sort_uniq compare (List.map snd acquired)))
               (String.concat ", " held_names));
          List.iter
            (fun h ->
              List.iter
                (fun a ->
                  st.st_edges :=
                    (h, a, (p.p_file, p.p_line)) :: !(st.st_edges))
                acquired)
            p.p_held
        end
        else
          match
            Callgraph.reaches st.st_graph ~id:p.p_target
              ~leaves:blocking_leaves
          with
          | Some chain ->
            emit st ~code:"C004" ~file:p.p_file ~line:p.p_line ~col:p.p_col
              (Printf.sprintf
                 "calls %s while holding %s; the callee reaches the \
                  blocking operation %s via %s — hoist the call out of \
                  the region or add a reasoned allow"
                 p.p_display
                 (String.concat ", " held_names)
                 (List.nth chain (List.length chain - 1))
                 (String.concat " -> " chain))
          | None -> ()
      end)
    pendings

(* --- lock-order cycles (C005) ------------------------------------------ *)

let cycles st =
  let edges =
    !(st.st_edges)
    |> List.filter (fun ((_, a), (_, b), _) -> a <> "?" && b <> "?")
    |> List.filter (fun (a, b, _) -> a <> b)
    |> List.sort_uniq compare
  in
  if edges <> [] then begin
    let succs n =
      List.filter_map (fun (a, b, _) -> if a = n then Some b else None) edges
    in
    let nodes =
      List.concat_map (fun (a, b, _) -> [ a; b ]) edges
      |> List.sort_uniq compare
    in
    let reaches_tbl = Hashtbl.create 16 in
    let reach a b =
      match Hashtbl.find_opt reaches_tbl (a, b) with
      | Some r -> r
      | None ->
        let visited = Hashtbl.create 8 in
        let rec go n =
          if Hashtbl.mem visited n then false
          else begin
            Hashtbl.add visited n ();
            List.exists (fun s -> s = b || go s) (succs n)
          end
        in
        let r = go a in
        Hashtbl.replace reaches_tbl (a, b) r;
        r
    in
    (* SCCs by mutual reachability: small graphs, quadratic is fine. *)
    let in_cycle = List.filter (fun n -> reach n n) nodes in
    let sccs =
      List.fold_left
        (fun groups n ->
          match
            List.partition (fun g -> reach n (List.hd g) && reach (List.hd g) n) groups
          with
          | [ g ], rest -> (n :: g) :: rest
          | _, rest -> [ n ] :: rest)
        [] in_cycle
    in
    List.iter
      (fun scc ->
        let scc = List.sort compare scc in
        let internal (a, b) = List.mem a scc && List.mem b scc in
        let sites =
          List.filter_map
            (fun (a, b, site) -> if internal (a, b) then Some site else None)
            edges
        in
        match List.sort compare sites with
        | [] -> ()
        | (file, line) :: _ ->
          let names =
            List.map (fun (f, tok) -> Printf.sprintf "%s (%s)" tok f) scc
          in
          emit st ~code:"C005" ~file ~line ~col:0
            (Printf.sprintf
               "lock-order cycle between %s; two regions acquire these \
                mutexes in opposite orders, which deadlocks under \
                contention — pick one global order"
               (String.concat " and " names)))
      (List.sort compare sccs)
  end

(* --- entry point -------------------------------------------------------- *)

let check graph sources =
  let st =
    {
      st_graph = graph;
      st_diags = ref [];
      st_pending = ref [];
      st_acquires = Hashtbl.create 64;
      st_edges = ref [];
    }
  in
  List.iter (analyze_source st) sources;
  process_pending st;
  cycles st;
  let by_path = Hashtbl.create 16 in
  List.iter
    (fun (s : Lint.source) ->
      Hashtbl.replace by_path (normalize s.Lint.src_path) s)
    sources;
  !(st.st_diags)
  |> List.filter (fun (d : Diagnostic.t) ->
         match Hashtbl.find_opt by_path (normalize d.Diagnostic.file) with
         | Some src ->
           not (Lint.is_allowed src ~code:d.Diagnostic.code ~line:d.Diagnostic.line)
         | None -> true)
  |> List.sort_uniq Diagnostic.compare
