type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let v ~code ~severity ~file ?(line = 0) ?(col = 0) message =
  { code; severity; file; line; col; message }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Ok Error
  | "warning" -> Ok Warning
  | "info" -> Ok Info
  | other -> Result.Error (Printf.sprintf "unknown severity %S" other)

let is_error d = d.severity = Error

let errors ds = List.length (List.filter is_error ds)

let warnings ds = List.length (List.filter (fun d -> d.severity = Warning) ds)

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.code b.code in
        if c <> 0 then c else String.compare a.message b.message

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: %s %s: %s" d.file d.line d.col
    (severity_name d.severity) d.code d.message

let to_json d =
  Obs.Json.Obj
    [
      ("file", Obs.Json.String d.file);
      ("line", Obs.Json.Int d.line);
      ("col", Obs.Json.Int d.col);
      ("code", Obs.Json.String d.code);
      ("severity", Obs.Json.String (severity_name d.severity));
      ("message", Obs.Json.String d.message);
    ]

let of_json json =
  let open Obs.Json in
  let str key =
    match member key json with
    | Some (String s) -> Ok s
    | _ -> Result.Error (Printf.sprintf "diagnostic: missing string %S" key)
  in
  let int key =
    match member key json with
    | Some (Int i) -> Ok i
    | _ -> Result.Error (Printf.sprintf "diagnostic: missing int %S" key)
  in
  Result.bind (str "file") (fun file ->
      Result.bind (int "line") (fun line ->
          Result.bind (int "col") (fun col ->
              Result.bind (str "code") (fun code ->
                  Result.bind (str "severity") (fun sev ->
                      Result.bind (severity_of_name sev) (fun severity ->
                          Result.bind (str "message") (fun message ->
                              Ok { code; severity; file; line; col; message })))))))
