(** Offline verifier for the artifacts a client is asked to trust.

    The paper's premise is that analysis happens on the server,
    offline; the client applies annotations it never re-derives. That
    only works if an artifact can be audited {e at rest} — before a
    session, without a clip, without running anything. This module
    does exactly that for the three artifact kinds the pipeline
    ships:

    - encoded annotation tracks (v1 and v2 wire format) — framing,
      header and record CRCs, varint bounds, scene-index monotonicity
      and coverage, backlight register against the target panel's
      range, canonical quality grid;
    - [.slo] rule files — syntax, selectors against the known metric
      catalog, contradictory or duplicate rules;
    - [.fault] profiles — syntax, probability ranges, Gilbert-channel
      feasibility;
    - [.journal] decision journals ({!Obs.Journal}) — header and
      per-frame CRCs, framing bounds, payload schema, per-phase
      timestamp monotonicity;
    - [.resilience] profiles ({!Resilience.Profile}) — syntax,
      positive budgets, ladder rung order, breaker thresholds.

    Codes (stable, see README "Static checks"): [V001] dispatch,
    [V1xx] annotation streams, [V2xx] SLO files, [V3xx] fault
    profiles, [V4xx] decision journals, [V5xx] resilience profiles.
    Every check emits {!Diagnostic.t}; none of them raises or runs a
    session. *)

type known_metrics = {
  histograms : string list;
      (** registry histogram families — what [_pNN] selectors read *)
  names : string list;
      (** every registry family plus every declared monitor window
          series — what the other selectors read *)
}

val known_metrics : unit -> known_metrics
(** Snapshot of the live process: registry families plus
    {!Obs.Monitor.declared_series}. Complete only in an executable
    linked with [-linkall] (as [bin/lint] is), since declarations run
    at module initialisation. *)

val check_annotation :
  ?find_device:(string -> Display.Device.t option) ->
  file:string -> string -> Diagnostic.t list
(** [check_annotation ~file bytes] statically audits an encoded
    annotation stream. [find_device] (default {!Display.Device.find})
    resolves the header's device name for the backlight-range check;
    an unknown device skips that check silently. [file] labels the
    diagnostics. A pristine {!Annotation.Encoding.encode} (or [encode_v1])
    output yields []. *)

val check_slo :
  ?known:known_metrics -> file:string -> string -> Diagnostic.t list
(** [check_slo ~file text] validates an SLO rule file without a
    monitor: parse errors ([V201]), selectors naming no known metric
    ([V202], skipped when [known] — default {!known_metrics} — is
    empty), pairs of rules on the same selector that no value can
    satisfy simultaneously ([V203]), exact duplicates ([V204],
    warning), and an empty rule set ([V205], warning). *)

val check_fault : file:string -> string -> Diagnostic.t list
(** [check_fault ~file text] validates a fault profile: anything
    {!Streaming.Fault.parse} rejects becomes a [V301] error, a
    profile that injects no fault at all is a [V302] warning. *)

val check_resilience : file:string -> string -> Diagnostic.t list
(** [check_resilience ~file text] validates a resilience profile:
    anything {!Resilience.Profile.parse} rejects — unknown keys, bad
    numbers, unknown ladder rungs — becomes a [V501] error;
    non-positive budgets, round counts, windows, quotas or deadlines
    (which the runtime would clamp) are [V502] errors; ladder rungs
    written out of shallowest-first order (or duplicated) are [V503]
    errors; a breaker threshold outside [0, 1] is a [V504] error; a
    profile that configures nothing at all is a [V505] warning. *)

val check_journal : file:string -> string -> Diagnostic.t list
(** [check_journal ~file bytes] statically audits a decision journal
    ({!Obs.Journal} wire format): bad magic ([V401]), unknown version
    ([V402]), truncation mid-header or mid-frame ([V403]), header CRC
    mismatch ([V404]), per-frame CRC mismatch ([V405], walk
    continues), timestamps running backwards within a contiguous run
    of same-phase events ([V406] — each stage replays its own clock,
    and a stage may run several times per process, so a phase change
    or session start begins a fresh clock), payload schema violations
    — unknown kind tags, malformed fields, trailing bytes ([V407]) —
    and implausible framing lengths ([V408], walk stops). A pristine
    {!Obs.Journal.write} output yields []. *)

val check_file :
  ?find_device:(string -> Display.Device.t option) ->
  ?known:known_metrics -> string -> Diagnostic.t list
(** [check_file path] reads [path] and dispatches on its extension:
    [.slo] → {!check_slo}, [.fault] → {!check_fault}, [.resilience] →
    {!check_resilience}, [.journal] → {!check_journal}, anything else
    → {!check_annotation}. An unreadable file is a single [V001]
    error. *)
