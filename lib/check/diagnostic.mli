(** The one diagnostic currency of the static-verification layer.

    Both halves of [lib/check] — the source linter ({!Lint}) and the
    artifact verifier ({!Artifact}) — report findings as values of
    this type, so the CLI, the JSON emitter and the tests share a
    single rendering and a single severity policy: [Error] fails the
    build ([lint] exits non-zero), [Warning] and [Info] inform.

    Codes are stable identifiers: [L001]… for lint rules, [V001]… for
    artifact checks. They never get renumbered; retired codes are
    retired forever. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable code, e.g. ["L004"] or ["V108"] *)
  severity : severity;
  file : string;
  line : int;  (** 1-based; 0 when the finding has no location *)
  col : int;  (** 0-based column, as compilers print them *)
  message : string;
}

val v :
  code:string -> severity:severity -> file:string -> ?line:int -> ?col:int ->
  string -> t
(** [v ~code ~severity ~file msg] builds a diagnostic; [line] defaults
    to 0 (whole file), [col] to 0. *)

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"] — also the JSON encoding. *)

val is_error : t -> bool

val errors : t list -> int
(** Number of [Error]-severity diagnostics. *)

val warnings : t list -> int

val compare : t -> t -> int
(** Orders by file, line, column, code, message — the deterministic
    report order. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity code: message] — the grep-able one-line
    form, clickable in editors. *)

val to_json : t -> Obs.Json.t
(** [{"file": …, "line": …, "col": …, "code": …, "severity": …,
    "message": …}] — the schema documented in README "Static
    checks". *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; [of_json (to_json d) = Ok d]. *)
