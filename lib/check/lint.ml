module Diagnostic = Check.Diagnostic

type rule = { code : string; title : string; lib_only : bool }

let rules =
  [
    { code = "L001"; title = "ambient wall-clock read"; lib_only = false };
    { code = "L002"; title = "ambient randomness"; lib_only = false };
    { code = "L003"; title = "hash-order-dependent iteration"; lib_only = false };
    { code = "L004"; title = "exception swallowed by wildcard"; lib_only = false };
    { code = "L005"; title = "direct console output"; lib_only = true };
    { code = "L006"; title = "library module without .mli"; lib_only = true };
    { code = "L007"; title = "exact float (in)equality"; lib_only = false };
    { code = "L008"; title = "malformed or bare lint suppression"; lib_only = false };
    { code = "L009"; title = "domain spawned outside lib/par"; lib_only = false };
    { code = "L010"; title = "meter sampled outside lib/power"; lib_only = false };
    {
      code = "L011";
      title = "journal emission outside sanctioned hooks";
      lib_only = false;
    };
    {
      code = "L012";
      title = "resilience state mutated outside sanctioned hooks";
      lib_only = false;
    };
  ]

(* --- identifier tables ------------------------------------------------- *)

let clock_idents = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let random_idents =
  [
    "Random.self_init"; "Random.int"; "Random.full_int"; "Random.float";
    "Random.bool"; "Random.bits"; "Random.int32"; "Random.int64";
    "Random.nativeint";
  ]

let print_idents =
  [
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "Format.print_string"; "Format.print_newline"; "print_endline";
    "print_string"; "print_newline"; "print_char"; "print_int"; "print_float";
    "print_bytes"; "prerr_endline"; "prerr_string"; "prerr_newline";
    "prerr_char"; "prerr_int"; "prerr_float"; "prerr_bytes";
  ]

let hashtbl_iterators = [ "Hashtbl.fold"; "Hashtbl.iter" ]

(* Raw parallelism primitives. Only Par.Pool may touch these: ad-hoc
   domains bypass the pool's deterministic chunking and reduction
   order, which is the whole byte-identity argument. *)
let domain_idents = [ "Domain.spawn" ]

(* Power.Meter sampling entry points. Outside lib/power and lib/obs,
   ad-hoc metering produces joules the energy profiler never sees —
   all accounting is supposed to flow through the instrumented sites
   (the meter's own publish hook, the session attribution block). *)
let meter_idents =
  [
    "Power.Meter.create"; "Power.Meter.measure"; "Power.Meter.measure_trace";
    "Meter.create"; "Meter.measure"; "Meter.measure_trace";
  ]

(* Decision-journal emission points. The journal's value is that its
   event stream is a closed vocabulary recorded from audited hook
   sites (the diff/explain tooling reasons about what each event
   means); scattering [record] calls around the tree would turn it
   back into a printf log. *)
let journal_idents =
  [
    "Obs.Journal.record"; "Journal.record"; "Obs.Journal.record_in";
    "Journal.record_in";
  ]

(* The sanctioned hook sites outside lib/obs, by path suffix. The
   lib/resilience files journal their own decisions (ladder steps,
   breaker transitions, bulkhead verdicts, watchdog trips) — those
   events are the subsystem's whole point, so its modules are hook
   sites too. *)
let journal_hook_files =
  [
    "lib/streaming/session.ml"; "lib/streaming/playback.ml";
    "lib/streaming/transport.ml"; "lib/streaming/fault.ml";
    "lib/annot/annotator.ml"; "lib/resilience/breaker.ml";
    "lib/resilience/degrade.ml"; "lib/resilience/bulkhead.ml";
    "lib/fleet/scheduler.ml";
  ]

(* Resilience state transitions. Breaker trip/probe accounting and
   ladder-depth notes are control-plane decisions the journal must be
   able to replay; mutating them from arbitrary code would let a
   caller bend a breaker open (or mark rungs never actually served)
   without leaving an auditable trace. Only lib/resilience itself and
   the reviewed streaming integration points may call these. *)
let resilience_mut_idents =
  [
    "Resilience.Breaker.allow"; "Resilience.Breaker.record";
    "Breaker.allow"; "Breaker.record"; "Resilience.Degrade.note";
    "Degrade.note";
  ]

(* The sanctioned resilience integration sites, by path suffix. *)
let resilience_hook_files =
  [
    "lib/streaming/session.ml"; "lib/streaming/transport.ml";
    "lib/streaming/server.ml"; "lib/streaming/proxy.ml";
  ]

let sorters =
  [
    "List.sort"; "List.sort_uniq"; "List.stable_sort"; "List.fast_sort";
    "Array.sort"; "Array.stable_sort";
  ]

let float_arith = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_returning =
  [
    "float_of_int"; "Float.of_int"; "Float.abs"; "Float.max"; "Float.min";
    "Float.pow"; "Float.round"; "Float.rem"; "sqrt"; "exp"; "log"; "log10";
    "sin"; "cos"; "tan"; "atan"; "atan2"; "floor"; "ceil";
  ]

(* --- AST helpers ------------------------------------------------------- *)

let rec lid_parts = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> lid_parts l @ [ s ]
  | Longident.Lapply _ -> []

let ident_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> (
    match lid_parts txt with [] -> None | parts -> Some (String.concat "." parts))
  | _ -> None

let line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Syntactic evidence that an expression is a float: literal, float
   arithmetic, or a function everyone knows returns float. A linter
   without types cannot do better; the rule is documented as a
   heuristic. *)
let floatish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_float _) -> true
  | Parsetree.Pexp_apply (f, _) -> (
    match ident_name f with
    | Some op -> List.mem op float_arith || List.mem op float_returning
    | None -> false)
  | _ -> false

(* [Hashtbl.fold … |> List.sort …] (or a direct [List.sort … (fold …)])
   pins the order back down, so iteration inside such an expression is
   deterministic as far as the caller can see. *)
let is_sort_context (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_apply (f, args) -> (
    match ident_name f with
    | Some name when List.mem name sorters -> true
    | Some ("|>" | "@@") ->
      List.exists
        (fun (_, (arg : Parsetree.expression)) ->
          match arg.pexp_desc with
          | Parsetree.Pexp_apply (g, _) -> (
            match ident_name g with
            | Some name -> List.mem name sorters
            | None -> false)
          | _ -> false)
        args
    | _ -> false)
  | _ -> false

let rec wildcard_pattern (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Parsetree.Ppat_any -> true
  | Parsetree.Ppat_or (a, b) -> wildcard_pattern a || wildcard_pattern b
  | Parsetree.Ppat_alias (inner, _) -> wildcard_pattern inner
  | _ -> false

(* A handler that ends in [raise]/[failwith]/… is not swallowing: the
   failure still propagates, just renamed. *)
let rec reraises (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_apply (f, _) -> (
    match ident_name f with
    | Some ("raise" | "raise_notrace" | "failwith" | "invalid_arg") -> true
    | _ -> false)
  | Parsetree.Pexp_sequence (_, rest) -> reraises rest
  | Parsetree.Pexp_let (_, _, body) -> reraises body
  | Parsetree.Pexp_open (_, body) -> reraises body
  | _ -> false

(* --- the AST pass ------------------------------------------------------ *)

let lint_ast ~in_lib ~in_par ~in_power ~in_journal ~in_resilience ~file ~emit
    ast =
  let diag code loc message =
    let line, col = line_col loc in
    emit (Diagnostic.v ~code ~severity:Diagnostic.Error ~file ~line ~col message)
  in
  let sorted_depth = ref 0 in
  let check_expr (e : Parsetree.expression) =
    (match ident_name e with
    | Some name when List.mem name clock_idents ->
      diag "L001" e.pexp_loc
        (Printf.sprintf
           "%s reads the ambient clock; go through the Obs.Clock shim so runs \
            stay replayable" name)
    | Some name when List.mem name random_idents ->
      diag "L002" e.pexp_loc
        (Printf.sprintf
           "%s draws from the ambient RNG; use seeded Image.Prng or an \
            explicit Random.State" name)
    | Some name when (not in_par) && List.mem name domain_idents ->
      diag "L009" e.pexp_loc
        (Printf.sprintf
           "%s outside lib/par spawns an unmanaged domain; go through \
            Par.Pool, whose chunking keeps results byte-identical" name)
    | Some name when (not in_power) && List.mem name meter_idents ->
      diag "L010" e.pexp_loc
        (Printf.sprintf
           "%s samples the power meter outside lib/power; energy accounting \
            flows through the instrumented meter sites so Obs.Profile \
            attributes every joule" name)
    | Some name when (not in_journal) && List.mem name journal_idents ->
      diag "L011" e.pexp_loc
        (Printf.sprintf
           "%s emits a decision-journal event outside lib/obs and the \
            sanctioned session/playback/transport/annotator hook sites; the \
            journal's event vocabulary stays auditable only while emission \
            is confined to reviewed hooks" name)
    | Some name when (not in_resilience) && List.mem name resilience_mut_idents
      ->
      diag "L012" e.pexp_loc
        (Printf.sprintf
           "%s mutates breaker/ladder state outside lib/resilience and the \
            sanctioned streaming integration sites; fallback decisions stay \
            replayable only while their state transitions come from reviewed \
            hooks" name)
    | Some name when in_lib && List.mem name print_idents ->
      diag "L005" e.pexp_loc
        (Printf.sprintf
           "%s writes straight to the console from library code; report \
            through Obs.Log sinks" name)
    | _ -> ());
    match e.pexp_desc with
    | Parsetree.Pexp_apply (f, args) -> (
      match ident_name f with
      | Some name when List.mem name hashtbl_iterators && !sorted_depth = 0 ->
        diag "L003" f.pexp_loc
          (Printf.sprintf
             "%s visits bindings in hash order, which is not stable; sort the \
              result before it can reach output" name)
      | Some (("=" | "<>") as op) when List.length args = 2 ->
        if List.exists (fun (_, a) -> floatish a) args then
          diag "L007" e.pexp_loc
            (Printf.sprintf
               "(%s) on a float compares representations exactly; compare \
                against a tolerance or use an ordering" op)
      | _ -> ())
    | Parsetree.Pexp_try (_, cases) ->
      List.iter
        (fun (c : Parsetree.case) ->
          if wildcard_pattern c.pc_lhs && not (reraises c.pc_rhs) then
            diag "L004" c.pc_lhs.ppat_loc
              "wildcard handler swallows every exception, including the ones \
               nobody meant to catch; match the exceptions this code can \
               actually raise")
        cases
    | _ -> ()
  in
  let expr it (e : Parsetree.expression) =
    let sorted_here = is_sort_context e in
    if sorted_here then incr sorted_depth;
    check_expr e;
    Ast_iterator.default_iterator.expr it e;
    if sorted_here then decr sorted_depth
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it ast

(* --- lint control comments --------------------------------------------- *)

type suppression = {
  s_code : string;
  s_first : int;
  s_last : int;
  s_reason : string;
}

let strip_delims text =
  let text =
    if String.length text >= 2 && String.sub text 0 2 = "(*" then
      String.sub text 2 (String.length text - 2)
    else text
  in
  let text =
    if String.length text >= 2
       && String.sub text (String.length text - 2) 2 = "*)"
    then String.sub text 0 (String.length text - 2)
    else text
  in
  String.trim text

(* The concurrency pass (Check_lint.Concurrency) owns C-rule semantics,
   but the suppression grammar is parsed here, so the code registry
   must know both families. *)
let concurrency_codes =
  [ "C001"; "C002"; "C003"; "C004"; "C005"; "C006" ]

let known_code code =
  List.exists (fun r -> r.code = code) rules
  || List.mem code concurrency_codes

let split_words s =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) s)
  |> List.filter (fun w -> w <> "")

(* Parses one comment; returns a suppression, an L008 diagnostic, or
   nothing when the comment is not lint-directed at all. *)
let classify_comment ~file (text, (loc : Location.t)) =
  let body = strip_delims text in
  if not (String.starts_with ~prefix:"lint:" body) then None
  else
    let first, _ = line_col loc in
    let last = loc.Location.loc_end.Lexing.pos_lnum in
    let l008 message =
      Some
        (Either.Right
           (Diagnostic.v ~code:"L008" ~severity:Diagnostic.Error ~file
              ~line:first message))
    in
    let rest = String.trim (String.sub body 5 (String.length body - 5)) in
    match split_words rest with
    | "allow" :: code :: (_ :: _ as reason_words)
      when known_code code && String.concat "" reason_words <> "" ->
      Some
        (Either.Left
           {
             s_code = code;
             s_first = first;
             s_last = last;
             s_reason = String.concat " " reason_words;
           })
    | "allow" :: code :: [] when known_code code ->
      l008
        (Printf.sprintf
           "suppressing %s needs a reason: (* lint: allow %s <why> *)" code code)
    | "allow" :: code :: _ ->
      l008 (Printf.sprintf "unknown rule code %S in lint comment" code)
    | _ ->
      l008 "malformed lint comment; expected (* lint: allow L00n <reason> *)"

(* A suppression covers the comment's own lines and the line right
   after it, so it works both trailing the finding and on the line
   above. L008 itself cannot be allowed away. *)
let suppressed suppressions (d : Diagnostic.t) =
  d.Diagnostic.code <> "L008"
  && List.exists
       (fun s ->
         s.s_code = d.Diagnostic.code
         && d.Diagnostic.line >= s.s_first
         && d.Diagnostic.line <= s.s_last + 1)
       suppressions

(* --- parsing ----------------------------------------------------------- *)

let parse_structure ~path text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  Parse.implementation lexbuf

let scan_comments ~path text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  Lexer.init ();
  let rec drain () =
    match Lexer.token lexbuf with Parser.EOF -> () | _ -> drain ()
  in
  drain ();
  Lexer.comments ()

let parse_failure ~file message loc =
  let line, col = match loc with Some l -> line_col l | None -> (1, 0) in
  [
    Diagnostic.v ~code:"L000" ~severity:Diagnostic.Error ~file ~line ~col
      message;
  ]

(* --- sources: parse once, lint many ------------------------------------ *)

type source = {
  src_path : string;
  src_in_lib : bool;
  src_in_par : bool;
  src_in_power : bool;
  src_in_journal : bool;
  src_in_resilience : bool;
  src_has_mli : bool;
  src_ast : Parsetree.structure option;
  src_comments : (string * Location.t) list;
  src_suppressions : suppression list;
  src_comment_diags : Diagnostic.t list;
  src_parse_diags : Diagnostic.t list;
}

let of_string ?in_lib ?in_par ?in_power ?in_journal ?in_resilience
    ?(has_mli = true) ~path contents =
  let segments =
    let p = String.map (fun c -> if c = '\\' then '/' else c) path in
    String.split_on_char '/' p
  in
  let in_lib =
    match in_lib with
    | Some b -> b
    | None ->
      let rec has_lib_seg = function
        | [] -> false
        | "lib" :: _ :: _ -> true
        | _ :: rest -> has_lib_seg rest
      in
      has_lib_seg segments
  in
  let in_par =
    match in_par with
    | Some b -> b
    | None ->
      let rec has_par_seg = function
        | [] -> false
        | "lib" :: "par" :: _ -> true
        | _ :: rest -> has_par_seg rest
      in
      has_par_seg segments
  in
  let in_power =
    match in_power with
    | Some b -> b
    | None ->
      (* lib/obs is exempt alongside lib/power: the profiler and its
         tests are part of the accounting machinery itself. *)
      let rec has_power_seg = function
        | [] -> false
        | "lib" :: ("power" | "obs") :: _ -> true
        | _ :: rest -> has_power_seg rest
      in
      has_power_seg segments
  in
  let in_journal =
    match in_journal with
    | Some b -> b
    | None ->
      let rec has_obs_seg = function
        | [] -> false
        | "lib" :: "obs" :: _ -> true
        | _ :: rest -> has_obs_seg rest
      in
      let normalized = String.concat "/" segments in
      has_obs_seg segments
      || List.exists
           (fun hook -> String.ends_with ~suffix:hook normalized)
           journal_hook_files
  in
  let in_resilience =
    match in_resilience with
    | Some b -> b
    | None ->
      let rec has_res_seg = function
        | [] -> false
        | "lib" :: "resilience" :: _ -> true
        | _ :: rest -> has_res_seg rest
      in
      let normalized = String.concat "/" segments in
      has_res_seg segments
      || List.exists
           (fun hook -> String.ends_with ~suffix:hook normalized)
           resilience_hook_files
  in
  let base =
    {
      src_path = path;
      src_in_lib = in_lib;
      src_in_par = in_par;
      src_in_power = in_power;
      src_in_journal = in_journal;
      src_in_resilience = in_resilience;
      src_has_mli = has_mli;
      src_ast = None;
      src_comments = [];
      src_suppressions = [];
      src_comment_diags = [];
      src_parse_diags = [];
    }
  in
  match parse_structure ~path contents with
  | exception Syntaxerr.Error err ->
    {
      base with
      src_parse_diags =
        parse_failure ~file:path "syntax error"
          (Some (Syntaxerr.location_of_error err));
    }
  | exception Lexer.Error (_, loc) ->
    { base with src_parse_diags = parse_failure ~file:path "lexical error" (Some loc) }
  | ast ->
    let comments = scan_comments ~path contents in
    let suppressions, comment_diags =
      List.fold_left
        (fun (sups, diags) comment ->
          match classify_comment ~file:path comment with
          | None -> (sups, diags)
          | Some (Either.Left s) -> (s :: sups, diags)
          | Some (Either.Right d) -> (sups, d :: diags))
        ([], []) comments
    in
    {
      base with
      src_ast = Some ast;
      src_comments = comments;
      src_suppressions = suppressions;
      src_comment_diags = comment_diags;
    }

let load_file ?in_lib path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg ->
    let src = of_string ?in_lib ~path "" in
    { src with src_ast = None; src_parse_diags = parse_failure ~file:path msg None }
  | contents ->
    let has_mli =
      Filename.check_suffix path ".ml"
      && Sys.file_exists (Filename.chop_suffix path ".ml" ^ ".mli")
    in
    of_string ?in_lib ~has_mli ~path contents

let is_allowed src ~code ~line =
  code <> "L008"
  && List.exists
       (fun s -> s.s_code = code && line >= s.s_first && line <= s.s_last + 1)
       src.src_suppressions

type allow = {
  a_code : string;
  a_file : string;
  a_line : int;
  a_reason : string;
}

let allows src =
  List.map
    (fun s ->
      {
        a_code = s.s_code;
        a_file = src.src_path;
        a_line = s.s_first;
        a_reason = s.s_reason;
      })
    src.src_suppressions
  |> List.sort compare

let filter_suppressed src diags =
  List.filter (fun d -> not (suppressed src.src_suppressions d)) diags
  |> List.sort Diagnostic.compare

let lint_parsed src =
  match src.src_ast with
  | None -> src.src_parse_diags
  | Some ast ->
    let found = ref src.src_comment_diags in
    let emit d = found := d :: !found in
    lint_ast ~in_lib:src.src_in_lib ~in_par:src.src_in_par
      ~in_power:src.src_in_power ~in_journal:src.src_in_journal
      ~in_resilience:src.src_in_resilience ~file:src.src_path ~emit ast;
    if src.src_in_lib && not src.src_has_mli then
      emit
        (Diagnostic.v ~code:"L006" ~severity:Diagnostic.Error
           ~file:src.src_path ~line:1
           "library module has no .mli; every lib/ module states its contract");
    filter_suppressed src !found

let lint_source ?in_lib ?in_par ?in_power ?in_journal ?in_resilience ?has_mli
    ~path contents =
  lint_parsed
    (of_string ?in_lib ?in_par ?in_power ?in_journal ?in_resilience ?has_mli
       ~path contents)

let lint_file ?in_lib path = lint_parsed (load_file ?in_lib path)

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if entry = "_build" || String.starts_with ~prefix:"." entry then []
           else ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []
