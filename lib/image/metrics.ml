let check_dims name a b =
  if Raster.width a <> Raster.width b || Raster.height a <> Raster.height b
  then invalid_arg (name ^ ": dimension mismatch")

let fold2 f acc a b =
  let w = Raster.width a and h = Raster.height a in
  let acc = ref acc in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      acc := f !acc (Raster.get a ~x ~y) (Raster.get b ~x ~y)
    done
  done;
  !acc

let mse a b =
  check_dims "Metrics.mse" a b;
  let sum =
    fold2
      (fun acc pa pb ->
        let dr = pa.Pixel.r - pb.Pixel.r
        and dg = pa.Pixel.g - pb.Pixel.g
        and db = pa.Pixel.b - pb.Pixel.b in
        acc + (dr * dr) + (dg * dg) + (db * db))
      0 a b
  in
  float_of_int sum /. float_of_int (3 * Raster.pixel_count a)

let psnr a b =
  let e = mse a b in
  if e <= 0. then infinity else 10. *. log10 (255. *. 255. /. e)

let mean_absolute_error a b =
  check_dims "Metrics.mean_absolute_error" a b;
  let sum =
    fold2
      (fun acc pa pb ->
        acc
        + abs (pa.Pixel.r - pb.Pixel.r)
        + abs (pa.Pixel.g - pb.Pixel.g)
        + abs (pa.Pixel.b - pb.Pixel.b))
      0 a b
  in
  float_of_int sum /. float_of_int (3 * Raster.pixel_count a)

let ssim a b =
  check_dims "Metrics.ssim" a b;
  let w = Raster.width a and h = Raster.height a in
  if w < 8 || h < 8 then invalid_arg "Metrics.ssim: image smaller than the window";
  let pa = Raster.luminance_plane a and pb = Raster.luminance_plane b in
  let sample plane x y = float_of_int (Char.code (Bytes.get plane ((y * w) + x))) in
  let c1 = (0.01 *. 255.) ** 2. and c2 = (0.03 *. 255.) ** 2. in
  let window x0 y0 =
    let n = 64. in
    let sum_a = ref 0. and sum_b = ref 0. in
    let sum_aa = ref 0. and sum_bb = ref 0. and sum_ab = ref 0. in
    for dy = 0 to 7 do
      for dx = 0 to 7 do
        let va = sample pa (x0 + dx) (y0 + dy) and vb = sample pb (x0 + dx) (y0 + dy) in
        sum_a := !sum_a +. va;
        sum_b := !sum_b +. vb;
        sum_aa := !sum_aa +. (va *. va);
        sum_bb := !sum_bb +. (vb *. vb);
        sum_ab := !sum_ab +. (va *. vb)
      done
    done;
    let mu_a = !sum_a /. n and mu_b = !sum_b /. n in
    let var_a = (!sum_aa /. n) -. (mu_a *. mu_a) in
    let var_b = (!sum_bb /. n) -. (mu_b *. mu_b) in
    let cov = (!sum_ab /. n) -. (mu_a *. mu_b) in
    ((2. *. mu_a *. mu_b) +. c1)
    *. ((2. *. cov) +. c2)
    /. (((mu_a *. mu_a) +. (mu_b *. mu_b) +. c1) *. (var_a +. var_b +. c2))
  in
  let total = ref 0. and count = ref 0 in
  let y = ref 0 in
  while !y + 8 <= h do
    let x = ref 0 in
    while !x + 8 <= w do
      total := !total +. window !x !y;
      incr count;
      x := !x + 4
    done;
    y := !y + 4
  done;
  !total /. float_of_int !count

let max_absolute_error a b =
  check_dims "Metrics.max_absolute_error" a b;
  fold2
    (fun acc pa pb ->
      let m =
        max
          (abs (pa.Pixel.r - pb.Pixel.r))
          (max (abs (pa.Pixel.g - pb.Pixel.g)) (abs (pa.Pixel.b - pb.Pixel.b)))
      in
      max acc m)
    0 a b
