type t = { bins : int array }

let bins_len = 256

let create () = { bins = Array.make bins_len 0 }

let of_raster img =
  let h = create () in
  let n = Raster.pixel_count img in
  let plane = Raster.luminance_plane img in
  for i = 0 to n - 1 do
    let y = Char.code (Bytes.unsafe_get plane i) in
    h.bins.(y) <- h.bins.(y) + 1
  done;
  h

let of_luminance_plane plane =
  let h = create () in
  for i = 0 to Bytes.length plane - 1 do
    let y = Char.code (Bytes.unsafe_get plane i) in
    h.bins.(y) <- h.bins.(y) + 1
  done;
  h

let of_counts counts =
  if Array.length counts <> bins_len then
    invalid_arg "Histogram.of_counts: need 256 bins";
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Histogram.of_counts: negative count")
    counts;
  { bins = Array.copy counts }

let add_sample h y =
  if y < 0 || y > 255 then invalid_arg "Histogram.add_sample: level out of range";
  h.bins.(y) <- h.bins.(y) + 1

let merge a b = { bins = Array.init bins_len (fun i -> a.bins.(i) + b.bins.(i)) }

let merge_into ~dst h =
  for i = 0 to bins_len - 1 do
    dst.bins.(i) <- dst.bins.(i) + h.bins.(i)
  done

let copy h = { bins = Array.copy h.bins }

let count h y =
  if y < 0 || y > 255 then invalid_arg "Histogram.count: level out of range";
  h.bins.(y)

let total h = Array.fold_left ( + ) 0 h.bins

let require_nonempty name h =
  if total h = 0 then invalid_arg (name ^ ": empty histogram")

let mean h =
  require_nonempty "Histogram.mean" h;
  let sum = ref 0 in
  for y = 0 to bins_len - 1 do
    sum := !sum + (y * h.bins.(y))
  done;
  float_of_int !sum /. float_of_int (total h)

let max_level h =
  require_nonempty "Histogram.max_level" h;
  let rec loop y = if h.bins.(y) > 0 then y else loop (y - 1) in
  loop (bins_len - 1)

let min_level h =
  require_nonempty "Histogram.min_level" h;
  let rec loop y = if h.bins.(y) > 0 then y else loop (y + 1) in
  loop 0

let dynamic_range h = max_level h - min_level h

let percentile_level h p =
  require_nonempty "Histogram.percentile_level" h;
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile_level: p out of range";
  let n = total h in
  let target = p *. float_of_int n in
  (* [acc > 0] keeps p = 0 (target 0) from answering an empty bin:
     the percentile level must contain at least one sample, so the
     floor of the walk is the lowest populated bin (= min_level). *)
  let rec loop y acc =
    let acc = acc + h.bins.(y) in
    if (acc > 0 && float_of_int acc >= target) || y = bins_len - 1 then y
    else loop (y + 1) acc
  in
  loop 0 0

let samples_above h y =
  let lo = max 0 (y + 1) in
  let sum = ref 0 in
  for i = lo to bins_len - 1 do
    sum := !sum + h.bins.(i)
  done;
  !sum

let clip_level h ~allowed_loss =
  require_nonempty "Histogram.clip_level" h;
  if allowed_loss < 0. || allowed_loss > 1. then
    invalid_arg "Histogram.clip_level: loss out of range";
  let n = float_of_int (total h) in
  let budget = allowed_loss *. n in
  (* Walk down from the top, accumulating the samples that would clip if
     the level were lowered past them; stop before exceeding the budget. *)
  let rec loop y lost =
    if y = 0 then 0
    else
      let lost' = lost + h.bins.(y) in
      if float_of_int lost' > budget then y else loop (y - 1) lost'
  in
  loop (max_level h) 0

let normalised h =
  let n = float_of_int (total h) in
  Array.map (fun c -> float_of_int c /. n) h.bins

let l1_distance a b =
  require_nonempty "Histogram.l1_distance" a;
  require_nonempty "Histogram.l1_distance" b;
  let pa = normalised a and pb = normalised b in
  let sum = ref 0. in
  for i = 0 to bins_len - 1 do
    sum := !sum +. abs_float (pa.(i) -. pb.(i))
  done;
  !sum

let earth_movers_distance a b =
  require_nonempty "Histogram.earth_movers_distance" a;
  require_nonempty "Histogram.earth_movers_distance" b;
  let pa = normalised a and pb = normalised b in
  let sum = ref 0. and cdf_diff = ref 0. in
  for i = 0 to bins_len - 1 do
    cdf_diff := !cdf_diff +. pa.(i) -. pb.(i);
    sum := !sum +. abs_float !cdf_diff
  done;
  !sum

let chi_square a b =
  require_nonempty "Histogram.chi_square" a;
  require_nonempty "Histogram.chi_square" b;
  let pa = normalised a and pb = normalised b in
  let sum = ref 0. in
  for i = 0 to bins_len - 1 do
    let s = pa.(i) +. pb.(i) in
    if s > 0. then begin
      let d = pa.(i) -. pb.(i) in
      sum := !sum +. (d *. d /. s)
    end
  done;
  !sum

let intersection a b =
  require_nonempty "Histogram.intersection" a;
  require_nonempty "Histogram.intersection" b;
  let pa = normalised a and pb = normalised b in
  let sum = ref 0. in
  for i = 0 to bins_len - 1 do
    sum := !sum +. min pa.(i) pb.(i)
  done;
  !sum

let to_array h = Array.copy h.bins

let equal a b = a.bins = b.bins

let pp ppf h =
  if total h = 0 then Format.fprintf ppf "<histogram empty>"
  else
    Format.fprintf ppf "<histogram n=%d mean=%.1f range=[%d,%d]>" (total h)
      (mean h) (min_level h) (max_level h)
