(** 256-bin luminance histograms.

    The paper evaluates quality through histograms because they "better
    capture the overall change without comparing individual pixels"
    (§2) and because a histogram exposes both the average luminance and
    the dynamic range of an image (Fig 3). The annotation pipeline also
    works on histograms: per-scene backlight levels are derived from
    the merged histogram of the scene's frames, so a clip is profiled
    in a single pixel pass. *)

type t
(** A luminance histogram with 256 bins (luma 0 to 255). Bin counts are
    non-negative. *)

val create : unit -> t
(** An empty histogram (all bins zero). *)

val of_raster : Raster.t -> t
(** [of_raster img] counts the BT.601 luma of every pixel of [img]. *)

val of_luminance_plane : Bytes.t -> t
(** [of_luminance_plane plane] counts bytes of a luma plane (as produced
    by {!Raster.luminance_plane}). *)

val of_counts : int array -> t
(** [of_counts bins] builds a histogram from 256 explicit bin counts.
    Raises [Invalid_argument] if the array is not of length 256 or any
    count is negative. *)

val add_sample : t -> int -> unit
(** [add_sample h y] increments bin [y]. Raises [Invalid_argument] if
    [y] is outside [0, 255]. *)

val merge : t -> t -> t
(** [merge a b] is the bin-wise sum; the histogram of a scene is the
    merge of the histograms of its frames. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst h] adds [h]'s bins into [dst] in place. *)

val copy : t -> t

val count : t -> int -> int
(** [count h y] is the number of samples in bin [y]. *)

val total : t -> int
(** [total h] is the number of samples (sum of all bins). *)

val mean : t -> float
(** [mean h] is the average luminance, the "average point" of Fig 3.
    Raises [Invalid_argument] on an empty histogram. *)

val max_level : t -> int
(** [max_level h] is the highest non-empty bin (the frame's maximum
    luminance). Raises [Invalid_argument] on an empty histogram. *)

val min_level : t -> int
(** [min_level h] is the lowest non-empty bin. Raises
    [Invalid_argument] on an empty histogram. *)

val dynamic_range : t -> int
(** [dynamic_range h] is [max_level h - min_level h] (Fig 3). *)

val percentile_level : t -> float -> int
(** [percentile_level h p] (with [0. <= p <= 1.]) is the smallest
    luminance level [y] holding at least one sample such that at least
    [p * total h] samples are at or below [y] — a percentile level
    always contains samples, so [percentile_level h 0.] equals
    [min_level h] and [percentile_level h 1.] equals [max_level h]. *)

val clip_level : t -> allowed_loss:float -> int
(** [clip_level h ~allowed_loss] is the smallest level [y] such that
    the fraction of samples strictly above [y] is at most
    [allowed_loss]. This is the paper's clipping heuristic: "we allow a
    fixed percent of the very bright pixels to be clipped" (Fig 5).
    With [allowed_loss = 0.] this is exactly [max_level h]. Raises
    [Invalid_argument] on an empty histogram or a loss outside
    [0, 1]. *)

val samples_above : t -> int -> int
(** [samples_above h y] is the number of samples with level strictly
    greater than [y]. *)

val l1_distance : t -> t -> float
(** [l1_distance a b] is the normalised L1 distance between the two
    distributions, in [0, 2]. Both histograms must be non-empty. Note
    that bin-wise L1 is brittle: shifting a narrow distribution by one
    level maximises it. Prefer {!earth_movers_distance} when comparing
    snapshots. *)

val earth_movers_distance : t -> t -> float
(** [earth_movers_distance a b] is the 1-D Wasserstein-1 distance
    between the normalised distributions, in luminance-level units
    (equal to the L1 distance between the two CDFs). It reads as "the
    average number of levels each pixel's luminance moved" and is the
    robust metric behind the snapshot comparison of Fig 2/Fig 4. Both
    histograms must be non-empty. *)

val chi_square : t -> t -> float
(** [chi_square a b] is the symmetric chi-square distance between the
    normalised distributions. Both histograms must be non-empty. *)

val intersection : t -> t -> float
(** [intersection a b] is the histogram-intersection similarity of the
    normalised distributions, in [0, 1]; 1 means identical. *)

val to_array : t -> int array
(** [to_array h] is a fresh copy of the 256 bin counts. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
