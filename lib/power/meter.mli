(** Sampling power meter — the software stand-in for the paper's rig.

    §5.1: "A PCI DAQ board was used to sample voltage drops across a
    resistor and the iPAQ, and sampled the voltages at 2K samples/sec."
    The meter samples a time-varying power function at a fixed rate and
    integrates energy with the same rectangle rule a DAQ post-processor
    would use. *)

type t

type reading = {
  duration_s : float;
  samples : int;
  energy_mj : float;  (** integral of power over time, millijoules *)
  average_power_mw : float;
  peak_power_mw : float;
  min_power_mw : float;
}

val create : ?sample_rate_hz:float -> unit -> t
(** [create ?sample_rate_hz ()] — default rate 2000 Hz, matching the
    paper's DAQ. The rate must be positive. *)

val sample_rate_hz : t -> float

val measure : ?component:string -> t -> duration_s:float -> (float -> float) -> reading
(** [measure meter ~duration_s power] samples [power t] (milliwatts at
    time [t] seconds) over [0, duration_s) and integrates. Duration
    must be positive. When [component] is given, the resulting energy
    is also published to the [power_energy_mj{component=...}]
    observability gauge and, when a health monitor is installed, to
    its [power_<component>_mj] gauge for SLO power budgets. *)

val measure_trace : ?component:string -> t -> dt_s:float -> float array -> reading
(** [measure_trace meter ~dt_s trace] integrates a pre-sampled power
    trace where [trace.(i)] holds the power during
    [[i*dt_s, (i+1)*dt_s)]. The meter resamples it at its own rate
    (zero-order hold), as the DAQ would see a stepwise real signal.
    [component] behaves as in {!measure}. *)

val savings_vs : baseline:reading -> reading -> float
(** [savings_vs ~baseline r] is the fractional energy saving
    [(baseline - r) / baseline]; positive when [r] uses less energy. *)

val pp_reading : Format.formatter -> reading -> unit
