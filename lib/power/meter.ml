type t = { sample_rate_hz : float }

type reading = {
  duration_s : float;
  samples : int;
  energy_mj : float;
  average_power_mw : float;
  peak_power_mw : float;
  min_power_mw : float;
}

let create ?(sample_rate_hz = 2000.) () =
  if sample_rate_hz <= 0. then invalid_arg "Meter.create: rate must be positive";
  { sample_rate_hz }

let sample_rate_hz m = m.sample_rate_hz

let obs_readings =
  Obs.counter ~help:"Meter integrations performed" "power_meter_readings_total" []

let obs_energy component =
  Obs.gauge ~help:"Last measured energy per accounted component (mJ)"
    "power_energy_mj"
    [ ("component", component) ]

let publish ?component reading =
  if Obs.enabled () then begin
    Obs.Metrics.Counter.incr obs_readings;
    match component with
    | Some c ->
      Obs.Metrics.Gauge.set (obs_energy c) reading.energy_mj;
      (* Also feed the health monitor so per-component power-budget
         rules ([power_<component>_mj < X]) can gate on it. The name
         is declared on first use: component names only exist at
         measurement time. *)
      Obs.Monitor.gauge
        (Obs.Monitor.declare_series ("power_" ^ c ^ "_mj"))
        reading.energy_mj;
      (* And the energy profiler: every metered joule is attributed
         under whatever span is open at measurement time. *)
      Obs.Profile.record ~component:c reading.energy_mj
    | None -> ()
  end;
  reading

let measure ?component m ~duration_s power =
  if duration_s <= 0. then invalid_arg "Meter.measure: duration must be positive";
  let dt = 1. /. m.sample_rate_hz in
  let n = max 1 (int_of_float (duration_s /. dt)) in
  let energy = ref 0. and peak = ref neg_infinity and low = ref infinity in
  for i = 0 to n - 1 do
    let p = power (float_of_int i *. dt) in
    energy := !energy +. (p *. dt);
    if p > !peak then peak := p;
    if p < !low then low := p
  done;
  publish ?component
    {
      duration_s;
      samples = n;
      energy_mj = !energy;
      average_power_mw = !energy /. (float_of_int n *. dt);
      peak_power_mw = !peak;
      min_power_mw = !low;
    }

let measure_trace ?component m ~dt_s trace =
  if dt_s <= 0. then invalid_arg "Meter.measure_trace: dt must be positive";
  let frames = Array.length trace in
  if frames = 0 then invalid_arg "Meter.measure_trace: empty trace";
  let duration_s = dt_s *. float_of_int frames in
  let power t =
    let i = int_of_float (t /. dt_s) in
    trace.(min (frames - 1) (max 0 i))
  in
  measure ?component m ~duration_s power

let savings_vs ~baseline r =
  if baseline.energy_mj <= 0. then invalid_arg "Meter.savings_vs: zero baseline";
  (baseline.energy_mj -. r.energy_mj) /. baseline.energy_mj

let pp_reading ppf r =
  Format.fprintf ppf "%.2f s, %d samples, %.1f mJ, avg %.1f mW (min %.1f, peak %.1f)"
    r.duration_s r.samples r.energy_mj r.average_power_mw r.min_power_mw
    r.peak_power_mw
