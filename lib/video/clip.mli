(** Video clips.

    A clip is a finite sequence of frames of fixed dimensions at a fixed
    frame rate. Frames are produced on demand ([render]) so that long
    clips never need to be resident in memory — the same streaming
    discipline the paper's server/proxy/client pipeline imposes. *)

type t = {
  name : string;
  width : int;
  height : int;
  fps : float;  (** frames per second; positive *)
  frame_count : int;  (** number of frames; non-negative *)
  render : int -> Image.Raster.t;
      (** [render i] is frame [i] (0-based). Deterministic: rendering
          the same index twice yields equal rasters. Raises
          [Invalid_argument] outside [0, frame_count). *)
}

val make :
  name:string ->
  width:int ->
  height:int ->
  fps:float ->
  frame_count:int ->
  (int -> Image.Raster.t) ->
  t
(** [make ~name ~width ~height ~fps ~frame_count render] wraps [render]
    with bounds checking. Raises [Invalid_argument] on non-positive
    dimensions or fps, or negative frame count. *)

val of_frames : name:string -> fps:float -> Image.Raster.t array -> t
(** [of_frames ~name ~fps frames] is an in-memory clip. The array must
    be non-empty and all frames must share dimensions. *)

val duration_seconds : t -> float
(** [duration_seconds clip] is [frame_count / fps]. *)

val frame_time : t -> int -> float
(** [frame_time clip i] is the presentation time of frame [i] in
    seconds. *)

val iter_frames : (int -> Image.Raster.t -> unit) -> t -> unit
(** [iter_frames f clip] renders every frame in order and applies
    [f index frame]. *)

val fold_frames : ('a -> int -> Image.Raster.t -> 'a) -> 'a -> t -> 'a
(** [fold_frames f acc clip] folds over frames in presentation order. *)

val map_frames : name:string -> (int -> Image.Raster.t -> Image.Raster.t) -> t -> t
(** [map_frames ~name f clip] is a clip whose frame [i] is
    [f i (clip.render i)]; dimensions are assumed preserved. *)

val max_luminance_track : t -> int array
(** [max_luminance_track clip] is the per-frame maximum luminance — the
    raw signal of Fig 6 ("Max. Luminance"). *)

val frame_histogram :
  ?plane:[ `Luma | `Channel_max ] -> t -> int -> Image.Histogram.t
(** [frame_histogram clip i] renders frame [i] and histograms the
    selected plane. Frames of a generated clip are rendered from
    frame-local state (see {!Clip_gen}), so distinct indices may be
    histogrammed concurrently — this is the unit of work the parallel
    profiler spreads across domains. *)

val histogram_track :
  ?plane:[ `Luma | `Channel_max ] -> t -> Image.Histogram.t array
(** [histogram_track clip] is the per-frame histogram, the input to the
    whole annotation pipeline (one pixel pass per frame). The default
    [`Luma] plane matches the paper; [`Channel_max] histograms
    per-pixel [max(r,g,b)] instead, which predicts compensation
    clipping exactly on saturated-colour content (see
    {!Image.Raster.channel_max_plane}). *)
