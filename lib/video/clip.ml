type t = {
  name : string;
  width : int;
  height : int;
  fps : float;
  frame_count : int;
  render : int -> Image.Raster.t;
}

let make ~name ~width ~height ~fps ~frame_count render =
  if width <= 0 || height <= 0 then invalid_arg "Clip.make: dimensions must be positive";
  if fps <= 0. then invalid_arg "Clip.make: fps must be positive";
  if frame_count < 0 then invalid_arg "Clip.make: negative frame count";
  let checked i =
    if i < 0 || i >= frame_count then invalid_arg "Clip.render: frame index out of range";
    render i
  in
  { name; width; height; fps; frame_count; render = checked }

let of_frames ~name ~fps frames =
  match Array.length frames with
  | 0 -> invalid_arg "Clip.of_frames: empty clip"
  | n ->
    let width = Image.Raster.width frames.(0)
    and height = Image.Raster.height frames.(0) in
    Array.iter
      (fun f ->
        if Image.Raster.width f <> width || Image.Raster.height f <> height then
          invalid_arg "Clip.of_frames: inconsistent frame dimensions")
      frames;
    make ~name ~width ~height ~fps ~frame_count:n (fun i -> frames.(i))

let duration_seconds clip = float_of_int clip.frame_count /. clip.fps

let frame_time clip i = float_of_int i /. clip.fps

let iter_frames f clip =
  for i = 0 to clip.frame_count - 1 do
    f i (clip.render i)
  done

let fold_frames f acc clip =
  let acc = ref acc in
  iter_frames (fun i frame -> acc := f !acc i frame) clip;
  !acc

let map_frames ~name f clip =
  { clip with name; render = (fun i -> f i (clip.render i)) }

let max_luminance_track clip =
  Array.init clip.frame_count (fun i -> Image.Raster.max_luminance (clip.render i))

let frame_histogram ?(plane = `Luma) clip i =
  let frame = clip.render i in
  let bytes =
    match plane with
    | `Luma -> Image.Raster.luminance_plane frame
    | `Channel_max -> Image.Raster.channel_max_plane frame
  in
  Image.Histogram.of_luminance_plane bytes

let histogram_track ?plane clip =
  Array.init clip.frame_count (fun i -> frame_histogram ?plane clip i)
