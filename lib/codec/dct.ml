let block_size = 8

let n = block_size

(* cosine.(u).(x) = alpha(u) * cos((2x+1) u pi / 16); rows of the 1-D
   orthonormal DCT matrix. *)
let cosine =
  Array.init n (fun u ->
      let alpha = if u = 0 then sqrt (1. /. float_of_int n) else sqrt (2. /. float_of_int n) in
      Array.init n (fun x ->
          alpha
          *. cos (((2. *. float_of_int x) +. 1.) *. float_of_int u *. Float.pi
                  /. (2. *. float_of_int n))))

let check block =
  if Array.length block <> n * n then invalid_arg "Dct: block must have 64 samples"

(* Separable transform: rows then columns. *)
let transform matrix_row block =
  check block;
  let tmp = Array.make (n * n) 0. in
  (* Rows. *)
  for y = 0 to n - 1 do
    for u = 0 to n - 1 do
      let acc = ref 0. in
      for x = 0 to n - 1 do
        acc := !acc +. (matrix_row u x *. block.((y * n) + x))
      done;
      tmp.((y * n) + u) <- !acc
    done
  done;
  (* Columns. *)
  let out = Array.make (n * n) 0. in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let acc = ref 0. in
      for y = 0 to n - 1 do
        acc := !acc +. (matrix_row v y *. tmp.((y * n) + u))
      done;
      out.((v * n) + u) <- !acc
    done
  done;
  out

let obs_ops =
  Obs.counter ~help:"8x8 DCT transforms performed (forward + inverse)"
    "codec_dct_ops_total" []

let obs_seconds =
  Obs.histogram ~help:"Wall-clock time of one 8x8 DCT transform"
    ~buckets:[| 1e-7; 5e-7; 1e-6; 5e-6; 1e-5; 1e-4; 1e-3 |]
    "codec_dct_seconds" []

let timed block transform_f =
  if Obs.enabled () then begin
    let t0 = Obs.Clock.now_ns () in
    let out = transform_f block in
    Obs.Metrics.Counter.incr obs_ops;
    Obs.Metrics.Histogram.observe obs_seconds
      (Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:t0));
    out
  end
  else transform_f block

let forward block = timed block (transform (fun u x -> cosine.(u).(x)))

let inverse block = timed block (transform (fun u x -> cosine.(x).(u)))
