type encoded = {
  data : string;
  width : int;
  height : int;
  fps : float;
  frame_count : int;
  params : Stream.params;
  frame_sizes_bits : int array;
  frame_types : Stream.frame_type array;
}

let obs_frames_encoded =
  let family t =
    Obs.counter ~help:"Frames pushed through the encoder"
      "codec_frames_encoded_total"
      [ ("type", t) ]
  in
  let i = family "I" and p = family "P" in
  function Stream.I_frame -> i | Stream.P_frame -> p

let obs_encoded_bytes =
  Obs.counter ~help:"Total compressed stream bytes produced"
    "codec_encoded_bytes_total" []

let obs_encode_frame_seconds =
  Obs.histogram ~help:"Wall-clock time encoding one frame"
    "codec_encode_frame_seconds" []

type luma_mode = Intra | Inter of Motion.vector

(* Bit cost of coding a motion vector. *)
let vector_cost (v : Motion.vector) =
  let z n = if n > 0 then (2 * n) - 1 else -2 * n in
  Golomb.ue_bit_length (z v.Motion.dx) + Golomb.ue_bit_length (z v.Motion.dy)

let write_header w ~width ~height ~fps ~frame_count (p : Stream.params) =
  String.iter (fun c -> Bitio.Writer.put_byte_aligned w (Char.code c)) Stream.magic;
  Bitio.Writer.put_byte_aligned w Stream.version;
  Golomb.write_ue w width;
  Golomb.write_ue w height;
  Golomb.write_ue w (int_of_float ((fps *. 1000.) +. 0.5));
  Golomb.write_ue w frame_count;
  Golomb.write_ue w p.Stream.gop;
  Golomb.write_ue w p.Stream.qp;
  Golomb.write_ue w p.Stream.search_range

(* Codes one luma plane of a P frame and reconstructs it in place into
   [recon]; returns the per-block mode grid. *)
let code_luma_p w q ~search_range ~(current : Plane.t) ~(reference : Plane.t)
    ~(recon : Plane.t) =
  let bw = current.Plane.width / 8 and bh = current.Plane.height / 8 in
  let modes = Array.make (bw * bh) Intra in
  for by = 0 to bh - 1 do
    for bx = 0 to bw - 1 do
      let x = bx * 8 and y = by * 8 in
      let samples = Motion.extract_block current ~x ~y in
      (* Candidate 1: inter with the best motion vector, integer search
         then half-pel refinement. *)
      let zero_sad = Motion.sad current reference ~x ~y Motion.zero in
      let searched =
        if zero_sad < 128 then
          (* Near-perfect zero-vector prediction (static content):
             half-pel refinement could only trade exact samples for
             interpolated ones. *)
          Motion.to_halfpel Motion.zero
        else begin
          let integer_vec, integer_sad =
            Motion.search ~range:search_range ~current ~reference ~x ~y ()
          in
          let refined, refined_sad =
            Motion.refine_halfpel ~current ~reference ~x ~y integer_vec
          in
          if refined_sad < integer_sad then refined else Motion.to_halfpel integer_vec
        end
      in
      (* SAD-best is not bits-best: evaluate the searched vector and the
         zero vector by exact bit cost, then compare with intra. *)
      let inter_candidate vector =
        let prediction = Motion.extract_predicted_halfpel reference ~x ~y vector in
        let levels = Block_codec.code_inter q Quant.Luma ~samples ~prediction in
        (1 + vector_cost vector + Coeff.bit_cost levels, vector, prediction, levels)
      in
      let candidates =
        inter_candidate searched
        ::
        (if searched = Motion.to_halfpel Motion.zero then []
         else [ inter_candidate (Motion.to_halfpel Motion.zero) ])
      in
      let inter_cost, vec, prediction, inter_levels =
        List.fold_left
          (fun (bc, bv, bp, bl) (c, v, p, l) ->
            if c < bc then (c, v, p, l) else (bc, bv, bp, bl))
          (List.hd candidates) (List.tl candidates)
      in
      (* Candidate 2: intra. *)
      let intra_levels = Block_codec.code_intra q Quant.Luma samples in
      let intra_cost = 1 + Coeff.bit_cost intra_levels in
      if inter_cost <= intra_cost then begin
        modes.((by * bw) + bx) <- Inter vec;
        Golomb.write_ue w 0;
        Golomb.write_se w vec.Motion.dx;
        Golomb.write_se w vec.Motion.dy;
        Coeff.write_block w inter_levels;
        Motion.store_block recon ~x ~y
          (Block_codec.reconstruct_inter q Quant.Luma ~prediction inter_levels)
      end
      else begin
        Golomb.write_ue w 1;
        Coeff.write_block w intra_levels;
        Motion.store_block recon ~x ~y
          (Block_codec.reconstruct_intra q Quant.Luma intra_levels)
      end
    done
  done;
  modes

let code_plane_intra w q kind ~(current : Plane.t) ~(recon : Plane.t) =
  let bw = current.Plane.width / 8 and bh = current.Plane.height / 8 in
  for by = 0 to bh - 1 do
    for bx = 0 to bw - 1 do
      let x = bx * 8 and y = by * 8 in
      let samples = Motion.extract_block current ~x ~y in
      let levels = Block_codec.code_intra q kind samples in
      Coeff.write_block w levels;
      Motion.store_block recon ~x ~y (Block_codec.reconstruct_intra q kind levels)
    done
  done

(* Chroma of a P frame: mode and vector derived from the co-located
   luma block (top-left of the 16x16 luma area), so only the residual
   is written. *)
let code_chroma_p w q ~luma_modes ~luma_bw ~luma_bh ~(current : Plane.t)
    ~(reference : Plane.t) ~(recon : Plane.t) =
  let bw = current.Plane.width / 8 and bh = current.Plane.height / 8 in
  for by = 0 to bh - 1 do
    for bx = 0 to bw - 1 do
      let x = bx * 8 and y = by * 8 in
      let samples = Motion.extract_block current ~x ~y in
      let lx = min (2 * bx) (luma_bw - 1) and ly = min (2 * by) (luma_bh - 1) in
      match luma_modes.((ly * luma_bw) + lx) with
      | Inter vec ->
        let cvec = Motion.chroma_vector vec in
        let prediction = Motion.extract_predicted reference ~x ~y cvec in
        let levels = Block_codec.code_inter q Quant.Chroma ~samples ~prediction in
        Coeff.write_block w levels;
        Motion.store_block recon ~x ~y
          (Block_codec.reconstruct_inter q Quant.Chroma ~prediction levels)
      | Intra ->
        let levels = Block_codec.code_intra q Quant.Chroma samples in
        Coeff.write_block w levels;
        Motion.store_block recon ~x ~y
          (Block_codec.reconstruct_intra q Quant.Chroma levels)
    done
  done

let pad_ycbcr (f : Plane.ycbcr) =
  {
    Plane.y = Plane.pad_to_multiple f.Plane.y 8;
    cb = Plane.pad_to_multiple f.Plane.cb 8;
    cr = Plane.pad_to_multiple f.Plane.cr 8;
  }

let encode_clip_impl ~params ?i_frame_at ?qp_for clip =
  if params.Stream.qp < 1 || params.Stream.qp > 31 then
    invalid_arg "Encoder: qp out of [1, 31]";
  if params.Stream.gop < 1 then invalid_arg "Encoder: gop must be positive";
  if params.Stream.search_range < 0 then invalid_arg "Encoder: negative search range";
  let frame_count = clip.Video.Clip.frame_count in
  if frame_count = 0 then invalid_arg "Encoder: empty clip";
  let w = Bitio.Writer.create () in
  write_header w ~width:clip.Video.Clip.width ~height:clip.Video.Clip.height
    ~fps:clip.Video.Clip.fps ~frame_count params;
  let frame_sizes_bits = Array.make frame_count 0 in
  let frame_types = Array.make frame_count Stream.I_frame in
  let reference = ref None in
  for i = 0 to frame_count - 1 do
    let obs_t0 = if Obs.enabled () then Obs.Clock.now_ns () else 0L in
    let frame = pad_ycbcr (Plane.of_raster (clip.Video.Clip.render i)) in
    let is_i =
      (match i_frame_at with
      | Some predicate -> predicate i
      | None -> i mod params.Stream.gop = 0)
      || !reference = None
    in
    Bitio.Writer.align w;
    let start_bits = Bitio.Writer.bit_length w in
    (* Per-frame quantiser: adaptive callers steer the rate here. *)
    let qp =
      match qp_for with
      | None -> params.Stream.qp
      | Some f -> f ~index:i ~total_bits:start_bits
    in
    if qp < 1 || qp > 31 then invalid_arg "Encoder: controller qp out of [1, 31]";
    let q = Quant.make ~qp in
    Bitio.Writer.put_byte_aligned w (if is_i then Char.code 'I' else Char.code 'P');
    Bitio.Writer.put_byte_aligned w qp;
    let recon =
      {
        Plane.y =
          Plane.create ~width:frame.Plane.y.Plane.width
            ~height:frame.Plane.y.Plane.height;
        cb =
          Plane.create ~width:frame.Plane.cb.Plane.width
            ~height:frame.Plane.cb.Plane.height;
        cr =
          Plane.create ~width:frame.Plane.cr.Plane.width
            ~height:frame.Plane.cr.Plane.height;
      }
    in
    (if is_i then begin
       frame_types.(i) <- Stream.I_frame;
       code_plane_intra w q Quant.Luma ~current:frame.Plane.y ~recon:recon.Plane.y;
       code_plane_intra w q Quant.Chroma ~current:frame.Plane.cb ~recon:recon.Plane.cb;
       code_plane_intra w q Quant.Chroma ~current:frame.Plane.cr ~recon:recon.Plane.cr
     end
     else begin
       frame_types.(i) <- Stream.P_frame;
       let prev =
         match !reference with Some r -> r | None -> assert false
       in
       let luma_bw = frame.Plane.y.Plane.width / 8
       and luma_bh = frame.Plane.y.Plane.height / 8 in
       let modes =
         code_luma_p w q ~search_range:params.Stream.search_range
           ~current:frame.Plane.y ~reference:prev.Plane.y ~recon:recon.Plane.y
       in
       code_chroma_p w q ~luma_modes:modes ~luma_bw ~luma_bh
         ~current:frame.Plane.cb ~reference:prev.Plane.cb ~recon:recon.Plane.cb;
       code_chroma_p w q ~luma_modes:modes ~luma_bw ~luma_bh
         ~current:frame.Plane.cr ~reference:prev.Plane.cr ~recon:recon.Plane.cr
     end);
    Plane.clamp recon.Plane.y;
    Plane.clamp recon.Plane.cb;
    Plane.clamp recon.Plane.cr;
    reference := Some recon;
    frame_sizes_bits.(i) <- Bitio.Writer.bit_length w - start_bits;
    if Obs.enabled () then begin
      Obs.Metrics.Counter.incr (obs_frames_encoded frame_types.(i));
      Obs.Metrics.Histogram.observe obs_encode_frame_seconds
        (Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:obs_t0))
    end
  done;
  Obs.Metrics.Counter.incr obs_encoded_bytes
    ~by:((Bitio.Writer.bit_length w + 7) / 8);
  {
    data = Bitio.Writer.contents w;
    width = clip.Video.Clip.width;
    height = clip.Video.Clip.height;
    fps = clip.Video.Clip.fps;
    frame_count;
    params;
    frame_sizes_bits;
    frame_types;
  }

let encode_clip ?(params = Stream.default_params) ?i_frame_at ?qp_for clip =
  Obs.Trace.with_span "codec.encode"
    ~attrs:
      [
        ("clip", clip.Video.Clip.name);
        ("frames", string_of_int clip.Video.Clip.frame_count);
      ]
    (fun () -> encode_clip_impl ~params ?i_frame_at ?qp_for clip)

let total_bytes e = String.length e.data

let mean_frame_bytes e =
  float_of_int (Array.fold_left ( + ) 0 e.frame_sizes_bits)
  /. 8. /. float_of_int e.frame_count

let pp_summary ppf e =
  Format.fprintf ppf "<stream %dx%d %d frames qp=%d %d bytes (%.0f B/frame)>"
    e.width e.height e.frame_count e.params.Stream.qp (total_bytes e)
    (mean_frame_bytes e)
