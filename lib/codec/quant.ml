type plane_kind = Luma | Chroma

(* JPEG Annex K tables, the conventional starting point. *)
let luma_base =
  [|
    16; 11; 10; 16; 24; 40; 51; 61;
    12; 12; 14; 19; 26; 58; 60; 55;
    14; 13; 16; 24; 40; 57; 69; 56;
    14; 17; 22; 29; 51; 87; 80; 62;
    18; 22; 37; 56; 68; 109; 103; 77;
    24; 35; 55; 64; 81; 104; 113; 92;
    49; 64; 78; 87; 103; 121; 120; 101;
    72; 92; 95; 98; 112; 100; 103; 99;
  |]

let chroma_base =
  [|
    17; 18; 24; 47; 99; 99; 99; 99;
    18; 21; 26; 66; 99; 99; 99; 99;
    24; 26; 56; 99; 99; 99; 99; 99;
    47; 66; 99; 99; 99; 99; 99; 99;
    99; 99; 99; 99; 99; 99; 99; 99;
    99; 99; 99; 99; 99; 99; 99; 99;
    99; 99; 99; 99; 99; 99; 99; 99;
    99; 99; 99; 99; 99; 99; 99; 99;
  |]

type t = { qp : int; luma_steps : float array; chroma_steps : float array }

let scale_table qp base =
  (* qp 8 reproduces the base table; the scale is linear in qp. *)
  Array.map (fun s -> Float.max 1. (float_of_int s *. float_of_int qp /. 8.)) base

let make ~qp =
  if qp < 1 || qp > 31 then invalid_arg "Quant.make: qp out of [1, 31]";
  { qp; luma_steps = scale_table qp luma_base; chroma_steps = scale_table qp chroma_base }

let qp t = t.qp

let steps t = function Luma -> t.luma_steps | Chroma -> t.chroma_steps

let obs_ops =
  Obs.counter ~help:"64-coefficient quantise/dequantise passes"
    "codec_quant_ops_total" []

let obs_seconds =
  Obs.histogram ~help:"Wall-clock time of one quantise/dequantise pass"
    ~buckets:[| 1e-7; 5e-7; 1e-6; 5e-6; 1e-5; 1e-4; 1e-3 |]
    "codec_quant_seconds" []

let timed f =
  if Obs.enabled () then begin
    let t0 = Obs.Clock.now_ns () in
    let out = f () in
    Obs.Metrics.Counter.incr obs_ops;
    Obs.Metrics.Histogram.observe obs_seconds
      (Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:t0));
    out
  end
  else f ()

let quantise t kind coeffs =
  if Array.length coeffs <> 64 then invalid_arg "Quant.quantise: need 64 coefficients";
  let s = steps t kind in
  timed (fun () ->
      Array.init 64 (fun i -> int_of_float (Float.round (coeffs.(i) /. s.(i)))))

let dequantise t kind levels =
  if Array.length levels <> 64 then invalid_arg "Quant.dequantise: need 64 levels";
  let s = steps t kind in
  timed (fun () -> Array.init 64 (fun i -> float_of_int levels.(i) *. s.(i)))
