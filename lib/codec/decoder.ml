type decoded = {
  width : int;
  height : int;
  fps : float;
  params : Stream.params;
  frames : Image.Raster.t array;
}

type stream_info = {
  info_width : int;
  info_height : int;
  info_fps : float;
  info_frame_count : int;
  info_params : Stream.params;
  header_bytes : int;
}

type reference = Plane.ycbcr

type luma_mode = Intra | Inter of Motion.vector

let obs_frames_decoded =
  let family t =
    Obs.counter ~help:"Frames reconstructed by the decoder"
      "codec_frames_decoded_total"
      [ ("type", t) ]
  in
  let i = family "I" and p = family "P" in
  fun marker -> if marker = Char.code 'I' then i else p

let obs_decoded_bytes =
  Obs.counter ~help:"Compressed stream bytes consumed by the decoder"
    "codec_decoded_bytes_total" []

let obs_decode_frame_seconds =
  Obs.histogram ~help:"Wall-clock time decoding one frame"
    "codec_decode_frame_seconds" []

exception Corrupt of string

let fail msg = raise (Corrupt msg)

let read_header r =
  String.iter
    (fun c ->
      if Bitio.Reader.get_byte_aligned r <> Char.code c then fail "bad magic")
    Stream.magic;
  if Bitio.Reader.get_byte_aligned r <> Stream.version then fail "bad version";
  let width = Golomb.read_ue r in
  let height = Golomb.read_ue r in
  let fps = float_of_int (Golomb.read_ue r) /. 1000. in
  let frame_count = Golomb.read_ue r in
  let gop = Golomb.read_ue r in
  let qp = Golomb.read_ue r in
  let search_range = Golomb.read_ue r in
  if width <= 0 || height <= 0 then fail "bad dimensions";
  if width > 8192 || height > 8192 then fail "implausible dimensions";
  if fps <= 0. then fail "bad fps";
  if qp < 1 || qp > 31 then fail "bad qp";
  if gop < 1 then fail "bad gop";
  Bitio.Reader.align r;
  {
    info_width = width;
    info_height = height;
    info_fps = fps;
    info_frame_count = frame_count;
    info_params = { Stream.qp; gop; search_range };
    header_bytes = Bitio.Reader.position_bits r / 8;
  }

let parse_header data =
  match read_header (Bitio.Reader.of_string data) with
  | info -> Ok info
  | exception Corrupt msg -> Error msg
  | exception Bitio.Reader.Out_of_bits -> Error "truncated header"

let decode_plane_intra r q kind (plane : Plane.t) =
  let bw = plane.Plane.width / 8 and bh = plane.Plane.height / 8 in
  for by = 0 to bh - 1 do
    for bx = 0 to bw - 1 do
      let levels = Coeff.read_block r in
      Motion.store_block plane ~x:(bx * 8) ~y:(by * 8)
        (Block_codec.reconstruct_intra q kind levels)
    done
  done

let decode_luma_p r q ~(reference : Plane.t) (plane : Plane.t) =
  let bw = plane.Plane.width / 8 and bh = plane.Plane.height / 8 in
  let modes = Array.make (bw * bh) Intra in
  for by = 0 to bh - 1 do
    for bx = 0 to bw - 1 do
      let x = bx * 8 and y = by * 8 in
      match Golomb.read_ue r with
      | 0 ->
        let dx = Golomb.read_se r in
        let dy = Golomb.read_se r in
        (* Vectors are coded in half-pel units. *)
        let vec = { Motion.dx; dy } in
        let levels = Coeff.read_block r in
        let prediction = Motion.extract_predicted_halfpel reference ~x ~y vec in
        modes.((by * bw) + bx) <- Inter vec;
        Motion.store_block plane ~x ~y
          (Block_codec.reconstruct_inter q Quant.Luma ~prediction levels)
      | 1 ->
        let levels = Coeff.read_block r in
        Motion.store_block plane ~x ~y
          (Block_codec.reconstruct_intra q Quant.Luma levels)
      | m -> fail (Printf.sprintf "bad block mode %d" m)
    done
  done;
  modes

let decode_chroma_p r q ~luma_modes ~luma_bw ~luma_bh ~(reference : Plane.t)
    (plane : Plane.t) =
  let bw = plane.Plane.width / 8 and bh = plane.Plane.height / 8 in
  for by = 0 to bh - 1 do
    for bx = 0 to bw - 1 do
      let x = bx * 8 and y = by * 8 in
      let lx = min (2 * bx) (luma_bw - 1) and ly = min (2 * by) (luma_bh - 1) in
      let levels = Coeff.read_block r in
      match luma_modes.((ly * luma_bw) + lx) with
      | Inter vec ->
        let prediction =
          Motion.extract_predicted reference ~x ~y (Motion.chroma_vector vec)
        in
        Motion.store_block plane ~x ~y
          (Block_codec.reconstruct_inter q Quant.Chroma ~prediction levels)
      | Intra ->
        Motion.store_block plane ~x ~y
          (Block_codec.reconstruct_intra q Quant.Chroma levels)
    done
  done

let padded d = (d + 7) / 8 * 8

let fresh_planes info =
  let cw = (info.info_width + 1) / 2 and ch = (info.info_height + 1) / 2 in
  {
    Plane.y = Plane.create ~width:(padded info.info_width) ~height:(padded info.info_height);
    cb = Plane.create ~width:(padded cw) ~height:(padded ch);
    cr = Plane.create ~width:(padded cw) ~height:(padded ch);
  }

let raster_of_planes info planes =
  let cw = (info.info_width + 1) / 2 and ch = (info.info_height + 1) / 2 in
  Plane.to_raster
    {
      Plane.y = Plane.crop planes.Plane.y ~width:info.info_width ~height:info.info_height;
      cb = Plane.crop planes.Plane.cb ~width:cw ~height:ch;
      cr = Plane.crop planes.Plane.cr ~width:cw ~height:ch;
    }

(* Decodes one frame from the reader's current (aligned) position. *)
let decode_frame_body r info ~reference =
  Bitio.Reader.align r;
  let obs_t0 = if Obs.enabled () then Obs.Clock.now_ns () else 0L in
  let obs_start_bits = Bitio.Reader.position_bits r in
  let marker = Bitio.Reader.get_byte_aligned r in
  let qp = Bitio.Reader.get_byte_aligned r in
  if qp < 1 || qp > 31 then fail "bad frame qp";
  let q = Quant.make ~qp in
  let planes = fresh_planes info in
  (match (Char.chr marker, reference) with
  | 'I', _ ->
    decode_plane_intra r q Quant.Luma planes.Plane.y;
    decode_plane_intra r q Quant.Chroma planes.Plane.cb;
    decode_plane_intra r q Quant.Chroma planes.Plane.cr
  | 'P', Some prev ->
    let luma_bw = planes.Plane.y.Plane.width / 8
    and luma_bh = planes.Plane.y.Plane.height / 8 in
    let modes = decode_luma_p r q ~reference:prev.Plane.y planes.Plane.y in
    decode_chroma_p r q ~luma_modes:modes ~luma_bw ~luma_bh
      ~reference:prev.Plane.cb planes.Plane.cb;
    decode_chroma_p r q ~luma_modes:modes ~luma_bw ~luma_bh
      ~reference:prev.Plane.cr planes.Plane.cr
  | 'P', None -> fail "P frame without reference"
  | _ -> fail "bad frame marker"
  | exception Invalid_argument _ -> fail "bad frame marker");
  Plane.clamp planes.Plane.y;
  Plane.clamp planes.Plane.cb;
  Plane.clamp planes.Plane.cr;
  if Obs.enabled () then begin
    Obs.Metrics.Counter.incr (obs_frames_decoded marker);
    Obs.Metrics.Counter.incr obs_decoded_bytes
      ~by:((Bitio.Reader.position_bits r - obs_start_bits + 7) / 8);
    Obs.Metrics.Histogram.observe obs_decode_frame_seconds
      (Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:obs_t0))
  end;
  planes

let reference_of_raster raster = Plane.of_raster raster

let raster_of_reference ~width ~height planes =
  raster_of_planes
    {
      info_width = width;
      info_height = height;
      info_fps = 1.;
      info_frame_count = 0;
      info_params = Stream.default_params;
      header_bytes = 0;
    }
    planes

let decode_frame ~info ~reference payload =
  let r = Bitio.Reader.of_string payload in
  (* The reference picture may come from concealment at display size;
     re-pad it to the codec's working geometry. *)
  let reference =
    Option.map
      (fun (planes : Plane.ycbcr) ->
        {
          Plane.y = Plane.pad_to_multiple planes.Plane.y 8;
          cb = Plane.pad_to_multiple planes.Plane.cb 8;
          cr = Plane.pad_to_multiple planes.Plane.cr 8;
        })
      reference
  in
  match decode_frame_body r info ~reference with
  | planes -> Ok (raster_of_planes info planes, planes)
  | exception Corrupt msg -> Error msg
  | exception Bitio.Reader.Out_of_bits -> Error "truncated frame"
  | exception Invalid_argument msg -> Error msg

let decode_body r =
  let info = read_header r in
  let frames =
    Array.make info.info_frame_count (Image.Raster.create ~width:1 ~height:1)
  in
  let reference = ref None in
  for i = 0 to info.info_frame_count - 1 do
    let planes = decode_frame_body r info ~reference:!reference in
    reference := Some planes;
    frames.(i) <- raster_of_planes info planes
  done;
  {
    width = info.info_width;
    height = info.info_height;
    fps = info.info_fps;
    params = info.info_params;
    frames;
  }

let decode data =
  Obs.Trace.with_span "codec.decode"
    ~attrs:[ ("bytes", string_of_int (String.length data)) ]
    (fun () ->
      let r = Bitio.Reader.of_string data in
      match decode_body r with
      | d -> Ok d
      | exception Corrupt msg -> Error msg
      | exception Bitio.Reader.Out_of_bits -> Error "truncated stream"
      | exception Invalid_argument msg -> Error msg)

let decode_exn data =
  match decode data with Ok d -> d | Error msg -> failwith ("Decoder: " ^ msg)
