type outcome = {
  strategy : Strategy.t;
  registers : int array;
  report : Streaming.Playback.report;
  violations : int;
  worst_excess_clip : float;
  aggregate_clipped : float;
  annotation_bytes : int;
}

let solve_register ~device ~quality hist =
  (Annotation.Backlight_solver.solve ~device ~quality hist).Annotation.Backlight_solver.register

let annotated_registers ~device ~quality ~scene_params profiled =
  let track =
    Annotation.Annotator.annotate_profiled ~scene_params ~device ~quality profiled
  in
  (Annotation.Track.register_track track, Annotation.Encoding.encoded_size track)

let history_registers ~device ~quality ~window profiled =
  let hists = profiled.Annotation.Annotator.histograms in
  let n = Array.length hists in
  Array.init n (fun i ->
      if i = 0 then 255
      else begin
        (* Merge the previous [window] frames' histograms; the paper's
           point is that this knowledge is stale at scene changes. *)
        let merged = Image.Histogram.create () in
        let first = max 0 (i - window) in
        for j = first to i - 1 do
          Image.Histogram.merge_into ~dst:merged hists.(j)
        done;
        solve_register ~device ~quality merged
      end)

let qabs_registers ~device ~quality ~max_step profiled =
  if max_step < 1 then invalid_arg "Runner: max_step must be positive";
  let hists = profiled.Annotation.Annotator.histograms in
  let n = Array.length hists in
  let registers = Array.make n 255 in
  let previous = ref 255 in
  for i = 0 to n - 1 do
    let target = solve_register ~device ~quality hists.(i) in
    let step = max (-max_step) (min max_step (target - !previous)) in
    (* Never undershoot the target from above: dimming is rate-limited,
       but brightening to avoid clipping is immediate (QABS smooths
       dimming to avoid flicker while protecting quality). *)
    let next = if target > !previous then target else !previous + step in
    registers.(i) <- next;
    previous := next
  done;
  registers

let decide ~device ~quality profiled strategy =
  match (strategy : Strategy.t) with
  | Strategy.Annotated scene_params ->
    fst (annotated_registers ~device ~quality ~scene_params profiled)
  | Strategy.Annotated_per_frame ->
    fst
      (annotated_registers ~device ~quality
         ~scene_params:Annotation.Scene_detect.per_frame_params profiled)
  | Strategy.Full_backlight ->
    Array.make profiled.Annotation.Annotator.total_frames 255
  | Strategy.Static_dim register ->
    if register < 0 || register > 255 then invalid_arg "Runner: register out of range";
    Array.make profiled.Annotation.Annotator.total_frames register
  | Strategy.Client_analysis _ ->
    Array.map (solve_register ~device ~quality) profiled.Annotation.Annotator.histograms
  | Strategy.History_prediction { window } ->
    if window < 1 then invalid_arg "Runner: window must be positive";
    history_registers ~device ~quality ~window profiled
  | Strategy.Qabs_smoothed { max_step } ->
    qabs_registers ~device ~quality ~max_step profiled

let clipped_fraction_trace ~device profiled registers =
  let hists = profiled.Annotation.Annotator.histograms in
  if Array.length registers <> Array.length hists then
    invalid_arg "Runner: register track does not match clip";
  Array.mapi
    (fun i register ->
      let hist = hists.(i) in
      let total = Image.Histogram.total hist in
      if total = 0 then 0.
      else begin
        let gain = Display.Device.backlight_gain device register in
        (* Compensation k = 1/gain saturates pixels above 255*gain. *)
        let threshold = int_of_float (255. *. gain) in
        float_of_int (Image.Histogram.samples_above hist threshold)
        /. float_of_int total
      end)
    registers

let annotation_cost ~device ~quality profiled strategy =
  match (strategy : Strategy.t) with
  | Strategy.Annotated scene_params ->
    snd (annotated_registers ~device ~quality ~scene_params profiled)
  | Strategy.Annotated_per_frame ->
    snd
      (annotated_registers ~device ~quality
         ~scene_params:Annotation.Scene_detect.per_frame_params profiled)
  | Strategy.Full_backlight | Strategy.Static_dim _ | Strategy.Client_analysis _
  | Strategy.History_prediction _ | Strategy.Qabs_smoothed _ ->
    0

let run ?(options = Streaming.Playback.default_options) ~device ~quality profiled
    strategy =
  let registers = decide ~device ~quality profiled strategy in
  let annotation_bytes = annotation_cost ~device ~quality profiled strategy in
  let overhead = Strategy.cpu_overhead_fraction strategy in
  let options =
    {
      options with
      Streaming.Playback.cpu_busy_fraction =
        Float.min 1. (options.Streaming.Playback.cpu_busy_fraction +. overhead);
    }
  in
  let report =
    Streaming.Playback.run_with_registers ~options ~device ~quality
      ~clip_name:profiled.Annotation.Annotator.clip_name
      ~fps:profiled.Annotation.Annotator.fps ~annotation_bytes registers
  in
  let budget = Annotation.Quality_level.allowed_loss quality in
  let clips = clipped_fraction_trace ~device profiled registers in
  let tolerance = 0.01 in
  let violations = ref 0 and worst = ref 0. in
  Array.iter
    (fun c ->
      let excess = c -. budget in
      if excess > tolerance then begin
        incr violations;
        if excess > !worst then worst := excess
      end)
    clips;
  let total_pixels =
    Array.fold_left
      (fun acc h -> acc + Image.Histogram.total h)
      0 profiled.Annotation.Annotator.histograms
  in
  let clipped_pixels =
    Array.to_list clips
    |> List.mapi (fun i c ->
           c *. float_of_int (Image.Histogram.total profiled.Annotation.Annotator.histograms.(i)))
    |> List.fold_left ( +. ) 0.
  in
  {
    strategy;
    registers;
    report;
    violations = !violations;
    worst_excess_clip = !worst;
    aggregate_clipped =
      (if total_pixels = 0 then 0. else clipped_pixels /. float_of_int total_pixels);
    annotation_bytes;
  }

let standard_lineup =
  [
    Strategy.Annotated Annotation.Scene_detect.default_params;
    Strategy.Annotated_per_frame;
    Strategy.Full_backlight;
    Strategy.Static_dim 178;
    Strategy.Client_analysis { cpu_overhead_fraction = 0.2 };
    Strategy.History_prediction { window = 6 };
    Strategy.Qabs_smoothed { max_step = 8 };
  ]

let pp_outcome ppf o =
  Format.fprintf ppf
    "%-20s backlight %5.1f%%  total %5.1f%%  switches %4d  violations %4d (worst %+.3f)  annot %4dB"
    (Strategy.name o.strategy)
    (100. *. o.report.Streaming.Playback.backlight_savings)
    (100. *. o.report.Streaming.Playback.total_savings)
    o.report.Streaming.Playback.switch_count o.violations o.worst_excess_clip
    o.annotation_bytes
