type t =
  | Annotated of Annotation.Scene_detect.params
  | Annotated_per_frame
  | Full_backlight
  | Static_dim of int
  | Client_analysis of { cpu_overhead_fraction : float }
  | History_prediction of { window : int }
  | Qabs_smoothed of { max_step : int }

let name = function
  | Annotated _ -> "annotated"
  | Annotated_per_frame -> "annotated-per-frame"
  | Full_backlight -> "full-backlight"
  | Static_dim r -> Printf.sprintf "static-%d" r
  | Client_analysis _ -> "client-analysis"
  | History_prediction { window } -> Printf.sprintf "history-%d" window
  | Qabs_smoothed { max_step } -> Printf.sprintf "qabs-step-%d" max_step

let cpu_overhead_fraction = function
  | Client_analysis { cpu_overhead_fraction } -> cpu_overhead_fraction
  | Qabs_smoothed _ ->
    (* Per-frame histogram + solve on the device, like client
       analysis. *)
    0.15
  | Annotated _ | Annotated_per_frame | Full_backlight | Static_dim _
  | History_prediction _ ->
    0.

let is_clairvoyant = function
  | Annotated _ | Annotated_per_frame -> true
  | Full_backlight | Static_dim _ | Client_analysis _ | History_prediction _
  | Qabs_smoothed _ ->
    false

let pp ppf t = Format.pp_print_string ppf (name t)
