(** Uniform evaluation harness for all strategies (ablation A2).

    Every strategy reduces to a per-frame register track; the harness
    evaluates power through the same playback engine as the paper's
    approach, and quality as the per-frame clipped-pixel fraction
    implied by each register (a frame's pixels clip when the standard
    compensation [k = 1/gain] saturates them). *)

type outcome = {
  strategy : Strategy.t;
  registers : int array;
  report : Streaming.Playback.report;
  violations : int;
      (** frames whose clipped fraction exceeds the quality budget by
          more than one percentage point. The tolerance filters out
          scene-aggregation noise (a scene-level budget holds on the
          merged histogram, so individual frames may run fractions of
          a point over) and keeps the count focused on real
          mispredictions, which overshoot by tens of points *)
  worst_excess_clip : float;
      (** largest per-frame overshoot of the budget, as a fraction *)
  aggregate_clipped : float;
      (** clip-wide clipped-pixel fraction *)
  annotation_bytes : int;  (** side-channel cost; 0 for client-side *)
}

val decide :
  device:Display.Device.t ->
  quality:Annotation.Quality_level.t ->
  Annotation.Annotator.profiled ->
  Strategy.t ->
  int array
(** Per-frame registers the strategy would program. *)

val clipped_fraction_trace :
  device:Display.Device.t ->
  Annotation.Annotator.profiled ->
  int array ->
  float array
(** Per-frame clipped fraction for a register track. *)

val run :
  ?options:Streaming.Playback.options ->
  device:Display.Device.t ->
  quality:Annotation.Quality_level.t ->
  Annotation.Annotator.profiled ->
  Strategy.t ->
  outcome
(** Full evaluation. The playback options' CPU duty cycle is raised by
    the strategy's on-device analysis overhead. *)

val standard_lineup : Strategy.t list
(** The comparison set used by the A2 bench: annotated (scene and
    per-frame), full backlight, static 70 %, client analysis, history
    prediction, QABS-style smoothing. *)

val pp_outcome : Format.formatter -> outcome -> unit
