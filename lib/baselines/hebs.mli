(** Histogram-equalisation backlight scaling — the HEBS/DTM family of
    related work (§2 cites Iranli & Pedram's dynamic tone mapping).

    Instead of clipping a fixed percentage of bright pixels, this
    family *remaps* the tone curve towards the histogram's
    equalisation transform: highlights are compressed rather than
    discarded, freeing backlight headroom on content whose histogram
    is too top-heavy for the clipping budget. The price is a
    non-linear tone change across the whole image, where the paper's
    contrast enhancement is exact for all non-clipped pixels. *)

type solution = {
  register : int;  (** backlight register *)
  realised_gain : float;
  map : int array;  (** 256-entry monotone tone map applied per channel *)
  mean_error : float;
      (** mean perceived-intensity deviation over the histogram,
          normalised to full scale — comparable with
          {!Annotation.Operator.solution.mean_error} *)
}

val equalisation_map : Image.Histogram.t -> lambda:float -> int array
(** [equalisation_map hist ~lambda] blends the identity tone curve with
    full histogram equalisation ([lambda] in [0, 1]; 0 = identity,
    1 = classic equalisation). The result is monotone non-decreasing.
    Raises [Invalid_argument] on an empty histogram or out-of-range
    lambda. *)

val solve : device:Display.Device.t -> lambda:float -> Image.Histogram.t -> solution
(** [solve ~device ~lambda hist] chooses the backlight that preserves
    the scene's mean perceived brightness under the remap, and scores
    the residual distortion. *)

val apply_map : int array -> Image.Raster.t -> Image.Raster.t
(** [apply_map map frame] applies the tone map to every channel of
    every pixel. The map must have 256 entries in [0, 255]. *)
