(** Backlight-control strategies compared against the paper's
    annotation approach.

    Each strategy decides a per-frame backlight register (and the
    compensation that goes with it). The annotation strategies see the
    whole clip ahead of time (server-side profiling); the client-side
    strategies only see what a real client would: the current frame
    after decoding it, or the past. *)

type t =
  | Annotated of Annotation.Scene_detect.params
      (** the paper's approach: offline scene-level annotation *)
  | Annotated_per_frame
      (** ablation A1: offline annotation with per-frame backlight
          changes (more savings, more flicker, §4.3) *)
  | Full_backlight  (** no optimisation: register 255 throughout *)
  | Static_dim of int
      (** a fixed register for the whole clip — the "static
          perspective" the introduction says has limited gain *)
  | Client_analysis of { cpu_overhead_fraction : float }
      (** decode-then-analyse on the device: per-frame optimal
          registers, but extra CPU duty cycle per frame (§3 argues
          this "would place a heavier load on the mobile device") *)
  | History_prediction of { window : int }
      (** predict frame [i]'s requirement from the previous [window]
          frames' maxima; mispredictions at scene changes clip more
          pixels than the budget allows (§3) *)
  | Qabs_smoothed of { max_step : int }
      (** per-frame analysis with a slew-rate limit on the register,
          approximating QABS's smoothing post-pass [4] *)

val name : t -> string

val cpu_overhead_fraction : t -> float
(** Extra CPU duty cycle the strategy costs the client (0 for
    server-side strategies). *)

val is_clairvoyant : t -> bool
(** True when the decision for frame [i] uses information a streaming
    client could not have at display time without annotations. *)

val pp : Format.formatter -> t -> unit
