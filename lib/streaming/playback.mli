(** Client playback simulation: the experiment engine behind Fig 6,
    Fig 9 and Fig 10.

    The client receives a pre-compensated stream plus the annotation
    track; every frame it looks up the backlight register and displays.
    The simulator expands that into a per-frame power trace, integrates
    it with the DAQ-style meter, and compares against the same playback
    at full backlight. *)

type options = {
  scene_params : Annotation.Scene_detect.params;
  cpu_busy_fraction : float;
      (** fraction of each frame interval spent decoding (CPU busy);
          the rest idles. In [0, 1]. *)
  meter : Power.Meter.t;
}

val default_options : options
(** Default scene parameters, 60 % decode duty cycle, 2 kHz meter. *)

type report = {
  clip_name : string;
  device_name : string;
  quality : Annotation.Quality_level.t;
  frames : int;
  duration_s : float;
  mean_register : float;
  switch_count : int;
  annotation_bytes : int;
  backlight_energy_mj : float;
  backlight_baseline_mj : float;
  backlight_savings : float;  (** fraction; the Fig 9 quantity *)
  total_energy_mj : float;
  total_baseline_mj : float;
  total_savings : float;  (** fraction; the Fig 10 quantity *)
}

val power_trace :
  device:Display.Device.t ->
  cpu_busy_fraction:float ->
  registers:int array ->
  float array
(** Per-frame average device power (mW) given per-frame backlight
    registers: backlight at the register, CPU busy for the duty-cycle
    fraction, network receiving, plus fixed components. *)

val backlight_trace :
  device:Display.Device.t -> registers:int array -> float array
(** Per-frame backlight-only power (mW). *)

val run_with_registers :
  ?options:options ->
  device:Display.Device.t ->
  quality:Annotation.Quality_level.t ->
  clip_name:string ->
  fps:float ->
  annotation_bytes:int ->
  int array ->
  report
(** Core evaluation shared with the baseline strategies: integrates
    the trace and the full-backlight baseline and assembles a report.
    Raises [Invalid_argument] on an empty register track. *)

val run_profiled :
  ?options:options ->
  device:Display.Device.t ->
  quality:Annotation.Quality_level.t ->
  Annotation.Annotator.profiled ->
  report
(** Annotates the profiled clip and plays it back. *)

val run :
  ?options:options ->
  device:Display.Device.t ->
  quality:Annotation.Quality_level.t ->
  Video.Clip.t ->
  report
(** Profile, annotate, play back. *)

val instantaneous_backlight_savings :
  device:Display.Device.t -> Annotation.Track.t -> float array
(** Fig 6's "Backlight Power Saved" series: per frame,
    [1 - P_bl(register) / P_bl(255)]. *)

val evaluate_quality :
  rig:Camera.Snapshot.rig ->
  device:Display.Device.t ->
  clip:Video.Clip.t ->
  track:Annotation.Track.t ->
  sample_every:int ->
  (int * Camera.Quality.verdict) list
(** Fig 2 validation along the clip: every [sample_every]-th frame is
    compensated and photographed at its annotated register, against the
    original at full backlight. Returns (frame index, verdict). *)

val pp_report : Format.formatter -> report -> unit
