(** The media server / proxy node.

    Stores clips, profiles them once, and serves annotated (and
    optionally pre-compensated) streams per session. "The annotations
    can be generated and added to the video stream at either the server
    or proxy node, with no changes for the client" (§3) — the proxy
    case is the same code path invoked on a live clip. *)

type t

type prepared = {
  session : Negotiation.session;
  track : Annotation.Track.t;
  annotation_bytes : string;  (** encoded annotation side-channel *)
  compensated : Video.Clip.t;
      (** the stream the client will display: frames pre-brightened
          according to the track *)
}

val create : unit -> t

val add_clip : t -> Video.Clip.t -> unit
(** Registers a clip under its own name; re-adding a name replaces the
    clip and drops its cached profile. *)

val clip_names : t -> string list

val profile : t -> string -> (Annotation.Annotator.profiled, string) result
(** Cached single-pass profile of a stored clip. *)

val prepare :
  ?scene_params:Annotation.Scene_detect.params ->
  t ->
  name:string ->
  session:Negotiation.session ->
  (prepared, string) result
(** [prepare server ~name ~session] profiles (cached), annotates for
    the session's quality, encodes the annotation track and builds the
    compensated stream. With [Server_side] mapping the track carries
    final registers for the session's device; with [Client_side] it is
    device-neutral (§4.3) and the client finishes it with
    {!Annotation.Neutral.map_to_device}. Unknown names yield [Error]. *)

val encode_video :
  ?params:Codec.Stream.params -> t -> name:string ->
  (Codec.Encoder.encoded, string) result
(** Encodes the stored clip with the codec — used to size the video
    stream the annotations ride on. *)
