(** The media server / proxy node.

    Stores clips, profiles them once, and serves annotated (and
    optionally pre-compensated) streams per session. "The annotations
    can be generated and added to the video stream at either the server
    or proxy node, with no changes for the client" (§3) — the proxy
    case is the same code path invoked on a live clip.

    The server is safe to drive from several pool domains at once:
    the catalog, each clip's cached profile, and the prepared-stream
    cache are all mutex-guarded, and a clip is profiled exactly once
    however many sessions race on it. All outputs stay byte-identical
    to a single-threaded run — parallelism only changes wall clock. *)

type t

type prepared = {
  session : Negotiation.session;
  track : Annotation.Track.t;
  annotation_bytes : string;  (** encoded annotation side-channel *)
  compensated : Video.Clip.t;
      (** the stream the client will display: frames pre-brightened
          according to the track *)
}

val create : unit -> t

val add_clip : t -> Video.Clip.t -> unit
(** Registers a clip under its own name; re-adding a name replaces the
    clip, drops its cached profile and evicts every prepared stream
    derived from it. *)

val clip_names : t -> string list

val profile :
  ?pool:Par.Pool.t -> t -> string -> (Annotation.Annotator.profiled, string) result
(** Cached single-pass profile of a stored clip, computed at most once
    per clip (concurrent callers block on the clip's lock and reuse
    the first result). [pool] parallelises the per-frame histogram
    pass itself — see {!Annotation.Annotator.profile}. *)

val prepare :
  ?scene_params:Annotation.Scene_detect.params ->
  ?pool:Par.Pool.t ->
  ?bulkhead:Resilience.Bulkhead.t ->
  t ->
  name:string ->
  session:Negotiation.session ->
  (prepared, string) result
(** [prepare server ~name ~session] profiles (cached), annotates for
    the session's quality, encodes the annotation track and builds the
    compensated stream. With [Server_side] mapping the track carries
    final registers for the session's device; with [Client_side] it is
    device-neutral (§4.3) and the client finishes it with
    {!Annotation.Neutral.map_to_device}. Unknown names yield [Error].

    Results are cached by (clip name, quality, device name, mapping):
    a second session with the same key is served the already-prepared
    stream. Hits and misses are counted per server ({!cache_stats})
    and in the obs registry ([server_prepared_cache_hits_total] /
    [server_prepared_cache_misses_total]). Calls with explicit
    [scene_params] bypass the cache, since the key does not carry
    them.

    [bulkhead] puts the expensive annotation build inside a
    {!Resilience.Bulkhead} compartment: cache hits are always served,
    but a build the compartment sheds returns a passthrough stream
    instead — the original clip with a single full-backlight entry —
    which is never cached, so a later admitted prepare still builds
    the real thing. *)

val prepare_many :
  ?scene_params:Annotation.Scene_detect.params ->
  ?pool:Par.Pool.t ->
  ?bulkhead:Resilience.Bulkhead.t ->
  t ->
  (string * Negotiation.session) list ->
  (prepared, string) result list
(** Batch [prepare]: fans the independent (clip, session) pairs across
    [pool] (sequentially without one) and returns results in input
    order. Shared work is not repeated — a clip profiles once, and
    duplicate keys resolve to one cache entry. When [bulkhead] is
    given, each expensive build runs through it exactly as in
    [prepare]: cache hits are always served, a shed build serves the
    passthrough stream and never enters the cache. Output is the same
    list [prepare] would build one call at a time. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the prepared-stream cache since [create]. *)

val stale_annotation : t -> clip:string -> device:string -> prepared option
(** Any cached prepared stream for [clip] on [device], whatever
    quality or mapping it was built at — the degradation ladder's
    [stale] rung ({!Resilience.Degrade.Stale_cache}). The pick is
    deterministic (smallest cache key), so equal cache contents always
    serve the same stale stream. [None] when nothing matching was ever
    prepared. *)

val cache_size : t -> int
(** Number of distinct prepared streams currently cached. *)

val encode_video :
  ?params:Codec.Stream.params -> t -> name:string ->
  (Codec.Encoder.encoded, string) result
(** Encodes the stored clip with the codec — used to size the video
    stream the annotations ride on. *)
