let transcode ~params encoded =
  Result.map
    (fun (decoded : Codec.Decoder.decoded) ->
      let clip =
        Video.Clip.of_frames ~name:"transcoded" ~fps:decoded.Codec.Decoder.fps
          decoded.Codec.Decoder.frames
      in
      Codec.Encoder.encode_clip ~params clip)
    (Codec.Decoder.decode encoded.Codec.Encoder.data)

let transcode_for_link ?utilisation ~link encoded =
  Result.map
    (fun (decoded : Codec.Decoder.decoded) ->
      let clip =
        Video.Clip.of_frames ~name:"transcoded" ~fps:decoded.Codec.Decoder.fps
          decoded.Codec.Decoder.frames
      in
      (* Re-encoding cannot add quality: never search finer than the
         source quantiser. *)
      Codec.Rate_control.for_link ?utilisation
        ~min_qp:encoded.Codec.Encoder.params.Codec.Stream.qp
        ~link_bps:link.Netsim.bandwidth_bps clip)
    (Codec.Decoder.decode encoded.Codec.Encoder.data)

type live_session = {
  track : Annotation.Track.t;
  annotation_bytes : string;
  added_latency_s : float;
}

let annotate_live ?scene_params ~lookahead ~device ~quality clip =
  let profiled = Annotation.Annotator.profile clip in
  let track = Annotation.Live.annotate ?scene_params ~lookahead ~device ~quality profiled in
  {
    track;
    annotation_bytes = Annotation.Encoding.encode track;
    added_latency_s =
      Annotation.Live.added_latency_s ~lookahead ~fps:clip.Video.Clip.fps;
  }
