let transcode ~params encoded =
  Result.map
    (fun (decoded : Codec.Decoder.decoded) ->
      let clip =
        Video.Clip.of_frames ~name:"transcoded" ~fps:decoded.Codec.Decoder.fps
          decoded.Codec.Decoder.frames
      in
      Codec.Encoder.encode_clip ~params clip)
    (Codec.Decoder.decode encoded.Codec.Encoder.data)

let transcode_for_link ?utilisation ~link encoded =
  Result.map
    (fun (decoded : Codec.Decoder.decoded) ->
      let clip =
        Video.Clip.of_frames ~name:"transcoded" ~fps:decoded.Codec.Decoder.fps
          decoded.Codec.Decoder.frames
      in
      (* Re-encoding cannot add quality: never search finer than the
         source quantiser. *)
      Codec.Rate_control.for_link ?utilisation
        ~min_qp:encoded.Codec.Encoder.params.Codec.Stream.qp
        ~link_bps:link.Netsim.bandwidth_bps clip)
    (Codec.Decoder.decode encoded.Codec.Encoder.data)

type live_session = {
  track : Annotation.Track.t;
  annotation_bytes : string;
  added_latency_s : float;
}

(* Shed fallback for a live session the bulkhead refuses: a
   passthrough track (full backlight everywhere) at zero added
   latency — the proxy stops annotating, it never stops streaming. *)
let live_passthrough ~device ~quality clip =
  let frames = clip.Video.Clip.frame_count in
  let entries =
    if frames = 0 then [||]
    else
      [|
        {
          Annotation.Track.first_frame = 0;
          frame_count = frames;
          register = 255;
          compensation = 1.;
          effective_max = 255;
        };
      |]
  in
  let track =
    Annotation.Track.make ~clip_name:clip.Video.Clip.name
      ~device_name:device.Display.Device.name ~quality
      ~fps:clip.Video.Clip.fps ~total_frames:frames entries
  in
  {
    track;
    annotation_bytes = Annotation.Encoding.encode track;
    added_latency_s = 0.;
  }

let annotate_live ?scene_params ?bulkhead ~lookahead ~device ~quality clip =
  let annotate () =
    let profiled = Annotation.Annotator.profile clip in
    let track =
      Annotation.Live.annotate ?scene_params ~lookahead ~device ~quality
        profiled
    in
    {
      track;
      annotation_bytes = Annotation.Encoding.encode track;
      added_latency_s =
        Annotation.Live.added_latency_s ~lookahead ~fps:clip.Video.Clip.fps;
    }
  in
  match bulkhead with
  | None -> annotate ()
  | Some b ->
    Resilience.Bulkhead.run b
      ~shed:(fun () -> live_passthrough ~device ~quality clip)
      annotate
