(** End-to-end session orchestration.

    One call that runs the complete system of Fig 1 plus every §3
    annotation application: encode, annotate (server- or client-
    mapped), protect the annotation side channel with FEC, ship both
    over a lossy link, conceal video losses, and play back with
    backlight scaling, CPU frequency scaling and radio sleep
    scheduling simultaneously — then account the whole-device energy
    against the unoptimised baseline (full backlight, full CPU speed,
    radio always on). This is the API a downstream integrator calls;
    the pieces remain available individually. *)

type degradation =
  | Full_backlight
      (** lost or corrupt scenes play at register 255, uncompensated —
          quality is never risked on a guessed annotation *)
  | Neighbour_clamp
      (** like [Full_backlight], except a gap whose two intact
          neighbour scenes agree on register and effective maximum is
          clamped to that agreed level — still conservative (the level
          was provably safe next door), recovering most of the savings
          for short gaps inside a long scene *)

type config = {
  device : Display.Device.t;
  quality : Annotation.Quality_level.t;
  mapping : Negotiation.mapping_site;
  link : Netsim.t;
  loss_rate : float;  (** Bernoulli packet/frame loss on the wireless hop *)
  gop : int;
  ramp_step : int option;  (** slew-limit dimming when set *)
  cpu_busy_fraction : float;  (** decode duty cycle for the power model *)
  seed : int;
  fault : Fault.t option;
      (** richer channel model for both hops; [None] keeps the legacy
          Bernoulli behaviour driven by [loss_rate], bit-identical to
          releases without fault injection *)
  nack_budget_s : float;
      (** simulated-time budget for the annotation NACK/retransmit
          loop ({!Transport.nack_retransmit}); [0.] disables it. Only
          used when [fault] is set. *)
  degradation : degradation;  (** policy for scenes whose record died *)
  resilience : Resilience.Profile.t option;
      (** resilience control plane for the faulty path: retry policy
          for the NACK schedule, a circuit breaker gating its rounds,
          a stage-deadline watchdog, and the degradation ladder the
          patching walks. [None] keeps every path bit-identical to the
          profile-free behaviour. Only used when [fault] is set. *)
  stale_track : Annotation.Track.t option;
      (** a previously prepared annotation track for the same clip
          (any quality — typically from {!Server}'s cache) that the
          ladder's [stale] rung falls back to, per scene or for the
          whole track *)
}

val default_config : device:Display.Device.t -> config
(** 10 % quality, server-side mapping, 802.11b link, no loss, GOP 12,
    no ramp, 60 % duty cycle, no fault injection, 40 ms NACK budget,
    full-backlight degradation, no resilience profile, no stale
    track. *)

type report = {
  config : config;
  frames : int;
  duration_s : float;
  video_bytes : int;
  annotation_bytes : int;
  annotations_survived : bool;
      (** whether any of the FEC-protected side channel was usable.
          Without fault injection this is all-or-nothing recovery; with
          a [fault] configured it is [true] as soon as one scene's
          record survived — [degraded_scenes] says how many did not.
          When [false] the client falls back to full backlight for the
          whole clip (quality is never risked on guessed
          annotations) *)
  video_mean_psnr : float;  (** after loss concealment, vs clean decode *)
  concealed_frames : int;
  backlight_savings : float;
  cpu_savings : float;
  radio_savings : float;
  device_savings : float;
      (** whole-device energy vs the unoptimised baseline, all three
          optimisations combined *)
  device_energy_mj : float;
  baseline_energy_mj : float;
  degraded_scenes : int;
      (** scenes whose annotation record was lost or corrupt and that
          therefore play at the degradation policy's safe level *)
  retransmissions : int;
      (** annotation packets re-sent by the NACK loop, all rounds *)
  corrupt_records : int;
      (** annotation records that arrived but failed their CRC32 (or
          sanity checks) and were discarded *)
}

val patch_partial :
  degradation -> Annotation.Encoding.partial -> Annotation.Track.t * int
(** [patch_partial policy partial] rebuilds a full, valid annotation
    track from a partial decode: surviving records keep their scenes,
    gaps are filled per [policy] (full backlight, or the neighbours'
    agreed level). Returns the patched track and the number of
    degraded scenes. Exposed for tests and downstream clients that run
    their own transport. *)

(** {1 Poll-able session machine}

    A session as an explicit state machine: [create] validates and
    allocates, each [step] advances exactly one stage — session start,
    transmit, decode/playback setup, then one simulated frame per call,
    then finalisation — and [result] reads the outcome once [step]
    returns [`Done]. Every observable effect (journal entries, logs,
    metrics, monitor feeds, profiler attribution) fires in exactly the
    order the historical run-to-completion implementation produced
    them, so a machine driven to completion is indistinguishable from
    {!run} — which is now implemented as exactly that loop. The fleet
    scheduler interleaves thousands of machines on the simulated clock
    by stepping each one as its next frame falls due. *)

type machine
(** One in-flight session. Not domain-safe: a machine belongs to the
    caller driving it. *)

type prepared_input = {
  track : Annotation.Track.t;
  annotation_payload : string;
  protected : Fec.protected_payload;
  encoded : Codec.Encoder.encoded;
  clean : Codec.Decoder.decoded option;
      (** reference decode of [encoded] for the PSNR account; [None]
          makes the machine decode it itself, as {!run} always did *)
}
(** The server-side artifacts a prepared-stream cache can inject into
    {!create}: everything computed before the transmission seed
    matters, shareable between every session playing the same clip at
    the same quality. *)

type progress =
  [ `Setup  (** server-side stages and the wireless hop still to run *)
  | `Frame of int  (** the next [step] replays this frame *)
  | `Finalize  (** all frames played; energy accounting remains *)
  | `Complete  (** [result] is available *) ]

val prepare_input :
  ?track:Annotation.Track.t -> config -> Video.Clip.t -> prepared_input
(** [prepare_input config clip] runs the server-side pipeline
    (annotate, encode, FEC-protect, reference-decode) once, outside
    any session: un-spanned and un-journaled, because cache fills are
    the cache owner's work, not any one session's. [?track] reuses an
    annotation track that already came out of {!Server.prepare} (with
    its bulkhead and cache wiring) instead of re-annotating. *)

val create : ?prepared:prepared_input -> config -> Video.Clip.t -> machine
(** [create config clip] validates the configuration ([loss_rate]
    within [0, 1], non-empty clip — same exceptions as {!run}) and
    returns a machine at its start state. No simulation effects happen
    until the first [step]. *)

val step : machine -> [ `Running | `Done ]
(** Advance one stage (one simulated frame, once playing). Idempotent
    after [`Done]. *)

val result : machine -> (report, string) result option
(** [None] until [step] has returned [`Done]. *)

val progress : machine -> progress
(** What the next [step] will do — the hook a scheduler keys its event
    clock on ([`Frame i] falls due at [i *. dt_s] on the session's
    local timeline). *)

val frames : machine -> int
(** Total frame count of the clip being played. *)

val dt_s : machine -> float
(** Simulated seconds per frame ([1 / fps]). *)

val run : config -> Video.Clip.t -> (report, string) result
(** [run config clip] executes the full session. Fails only on
    internal stream corruption.

    The first video frame is exempt from simulated loss (it is forced
    delivered and counted in the [forced_first_frame_deliveries_total]
    counter): with nothing decoded yet there is no previous picture to
    conceal with, so a real player would block on ARQ for the stream
    to actually start rather than play nothing — first-frame delivery
    is a precondition of playback, not a survivable loss. *)

val pp_report : Format.formatter -> report -> unit
(** Prints the report alone. Output is identical whether or not the
    observability layer is enabled — instrumentation never changes what
    the simulation says. *)

val pp_report_obs : Format.formatter -> report -> unit
(** [pp_report] followed by the observability summary (metric families
    and the span flame) when [Obs.enabled ()]; identical to [pp_report]
    otherwise. *)
