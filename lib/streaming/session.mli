(** End-to-end session orchestration.

    One call that runs the complete system of Fig 1 plus every §3
    annotation application: encode, annotate (server- or client-
    mapped), protect the annotation side channel with FEC, ship both
    over a lossy link, conceal video losses, and play back with
    backlight scaling, CPU frequency scaling and radio sleep
    scheduling simultaneously — then account the whole-device energy
    against the unoptimised baseline (full backlight, full CPU speed,
    radio always on). This is the API a downstream integrator calls;
    the pieces remain available individually. *)

type config = {
  device : Display.Device.t;
  quality : Annot.Quality_level.t;
  mapping : Negotiation.mapping_site;
  link : Netsim.t;
  loss_rate : float;  (** Bernoulli packet/frame loss on the wireless hop *)
  gop : int;
  ramp_step : int option;  (** slew-limit dimming when set *)
  cpu_busy_fraction : float;  (** decode duty cycle for the power model *)
  seed : int;
}

val default_config : device:Display.Device.t -> config
(** 10 % quality, server-side mapping, 802.11b link, no loss, GOP 12,
    no ramp, 60 % duty cycle. *)

type report = {
  config : config;
  frames : int;
  duration_s : float;
  video_bytes : int;
  annotation_bytes : int;
  annotations_survived : bool;
      (** whether the FEC-protected side channel was recovered; when it
          is not, the client falls back to full backlight (quality is
          never risked on guessed annotations) *)
  video_mean_psnr : float;  (** after loss concealment, vs clean decode *)
  concealed_frames : int;
  backlight_savings : float;
  cpu_savings : float;
  radio_savings : float;
  device_savings : float;
      (** whole-device energy vs the unoptimised baseline, all three
          optimisations combined *)
  device_energy_mj : float;
  baseline_energy_mj : float;
}

val run : config -> Video.Clip.t -> (report, string) result
(** [run config clip] executes the full session. Fails only on
    irrecoverable transport conditions (e.g. the first video frame
    lost) or internal stream corruption. *)

val pp_report : Format.formatter -> report -> unit
(** Prints the report alone. Output is identical whether or not the
    observability layer is enabled — instrumentation never changes what
    the simulation says. *)

val pp_report_obs : Format.formatter -> report -> unit
(** [pp_report] followed by the observability summary (metric families
    and the span flame) when [Obs.enabled ()]; identical to [pp_report]
    otherwise. *)
