(** Energy-aware quality planning.

    §4.2: "The user decides if some quality can be traded for more
    power savings" — the planner automates that decision from a runtime
    goal: given a battery and a target playback duration, it selects
    the *least* lossy advertised quality level whose projected average
    power meets the goal, projecting power from the clip's own profile
    (the same annotations the server already computes). *)

type plan = {
  quality : Annotation.Quality_level.t;
  average_power_mw : float;
  projected_runtime_hours : float;
}

val project :
  ?options:Playback.options ->
  device:Display.Device.t ->
  quality:Annotation.Quality_level.t ->
  Annotation.Annotator.profiled ->
  float
(** [project ~device ~quality profiled] is the average device power
    (mW) of annotated playback of this content at the given quality. *)

val plan :
  ?options:Playback.options ->
  battery:Power.Battery.t ->
  target_hours:float ->
  device:Display.Device.t ->
  Annotation.Annotator.profiled ->
  (plan, plan) result
(** [plan ~battery ~target_hours ~device profiled] walks the advertised
    quality grid from lossless upward and returns [Ok] with the first
    level meeting the target runtime. If even the most aggressive
    level falls short, returns [Error] carrying that best-effort plan
    so the caller can report the shortfall. Raises [Invalid_argument]
    on a non-positive target. *)

val pp_plan : Format.formatter -> plan -> unit
