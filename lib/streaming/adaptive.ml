type step = {
  first_frame : int;
  frame_count : int;
  quality : Annotation.Quality_level.t;
  energy_mj : float;
}

type outcome = {
  steps : step list;
  completed : bool;
  battery_remaining_mwh : float;
  frames_played : int;
  mean_quality_loss : float;
}

(* 1 mWh = 3.6 J = 3600 mJ. *)
let mj_of_mwh mwh = mwh *. 3600.
let mwh_of_mj mj = mj /. 3600.

let run ?(options = Playback.default_options) ~device ~battery_mwh profiled =
  if battery_mwh <= 0. then invalid_arg "Adaptive.run: battery must be positive";
  let fps = profiled.Annotation.Annotator.fps in
  let dt_s = 1. /. fps in
  let total_frames = profiled.Annotation.Annotator.total_frames in
  (* Per-quality per-frame device power, annotated once per advertised
     level. *)
  let plans =
    List.map
      (fun quality ->
        let track =
          Annotation.Annotator.annotate_profiled
            ~scene_params:options.Playback.scene_params ~device ~quality profiled
        in
        let power =
          Playback.power_trace ~device
            ~cpu_busy_fraction:options.Playback.cpu_busy_fraction
            ~registers:(Annotation.Track.register_track track)
        in
        (quality, track, power))
      Annotation.Quality_level.standard_grid
  in
  (* Suffix energy per quality: energy to finish the clip from frame i. *)
  let suffix_energy =
    List.map
      (fun (quality, _, power) ->
        let suffix = Array.make (total_frames + 1) 0. in
        for i = total_frames - 1 downto 0 do
          suffix.(i) <- suffix.(i + 1) +. (power.(i) *. dt_s)
        done;
        (quality, suffix))
      plans
  in
  (* Scene boundaries come from the least lossy plan's track (all plans
     share the same segmentation, which depends only on the profile). *)
  let boundaries =
    match plans with
    | (_, track, _) :: _ ->
      Array.to_list track.Annotation.Track.entries
      |> List.map (fun (e : Annotation.Track.entry) ->
             (e.Annotation.Track.first_frame, e.Annotation.Track.frame_count))
    | [] -> assert false
  in
  let energy_left = ref (mj_of_mwh battery_mwh) in
  let steps = ref [] in
  let died = ref false in
  List.iter
    (fun (first_frame, frame_count) ->
      if not !died then begin
        (* Least lossy level whose remaining-clip energy fits. *)
        let quality =
          let fits (_, suffix) = suffix.(first_frame) <= !energy_left in
          match List.find_opt fits suffix_energy with
          | Some (q, _) -> q
          | None -> Annotation.Quality_level.Loss_20
        in
        let _, _, power =
          List.find (fun (q, _, _) -> Annotation.Quality_level.compare q quality = 0) plans
        in
        (* Play the span frame by frame; the battery may die inside. *)
        let spent = ref 0. in
        let played = ref 0 in
        (try
           for i = first_frame to first_frame + frame_count - 1 do
             let cost = power.(i) *. dt_s in
             if cost > !energy_left then raise Exit;
             energy_left := !energy_left -. cost;
             spent := !spent +. cost;
             incr played
           done
         with Exit -> died := true);
        if !played > 0 then
          steps :=
            {
              first_frame;
              frame_count = !played;
              quality;
              energy_mj = !spent;
            }
            :: !steps
      end)
    boundaries;
  let steps = List.rev !steps in
  let frames_played = List.fold_left (fun acc s -> acc + s.frame_count) 0 steps in
  let mean_quality_loss =
    if frames_played = 0 then 0.
    else
      List.fold_left
        (fun acc s ->
          acc
          +. (float_of_int s.frame_count *. Annotation.Quality_level.allowed_loss s.quality))
        0. steps
      /. float_of_int frames_played
  in
  {
    steps;
    completed = (not !died) && frames_played = total_frames;
    battery_remaining_mwh = Float.max 0. (mwh_of_mj !energy_left);
    frames_played;
    mean_quality_loss;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%s after %d frames, %.1f mWh left, mean loss %.1f%%@,"
    (if o.completed then "completed" else "DIED")
    o.frames_played o.battery_remaining_mwh
    (100. *. o.mean_quality_loss);
  List.iter
    (fun s ->
      Format.fprintf ppf "  frames %d-%d at %s (%.0f mJ)@," s.first_frame
        (s.first_frame + s.frame_count - 1)
        (Annotation.Quality_level.label s.quality)
        s.energy_mj)
    o.steps;
  Format.fprintf ppf "@]"
