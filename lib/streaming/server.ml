(* The server's shared state is reached from pool domains the moment
   [prepare_many] fans a sweep out, so every mutable field lives
   behind a mutex: the catalog Hashtbl behind [catalog_lock], each
   clip's cached profile behind its own [stored.lock] (so two clips
   profile concurrently but one clip profiles exactly once), and the
   prepared-stream cache behind [cache_lock]. *)

type stored = {
  clip : Video.Clip.t;
  lock : Mutex.t;
  mutable profiled : Annotation.Annotator.profiled option;  (* guarded_by: lock *)
}

(* What makes two sessions interchangeable: same clip, same quality
   level, same device (by name — device names identify device
   profiles) and same mapping site. Scene parameters are not part of
   the key, so only default-parameter prepares are cached. *)
type cache_key = {
  k_clip : string;
  k_quality : Annotation.Quality_level.t;
  k_device : string;
  k_mapping : Negotiation.mapping_site;
}

type prepared = {
  session : Negotiation.session;
  track : Annotation.Track.t;
  annotation_bytes : string;
  compensated : Video.Clip.t;
}

type t = {
  catalog : (string, stored) Hashtbl.t;  (* guarded_by: catalog_lock *)
  catalog_lock : Mutex.t;
  cache : (cache_key, prepared) Hashtbl.t;  (* guarded_by: cache_lock *)
  cache_lock : Mutex.t;
  mutable hits : int;  (* guarded_by: cache_lock *)
  mutable misses : int;  (* guarded_by: cache_lock *)
}

let obs_cache_hits =
  Obs.counter ~help:"Prepared-stream cache hits (clip x quality x device x mapping)"
    "server_prepared_cache_hits_total" []

let obs_cache_misses =
  Obs.counter ~help:"Prepared-stream cache misses (clip x quality x device x mapping)"
    "server_prepared_cache_misses_total" []

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create () =
  {
    catalog = Hashtbl.create 16;
    catalog_lock = Mutex.create ();
    cache = Hashtbl.create 64;
    cache_lock = Mutex.create ();
    hits = 0;
    misses = 0;
  }

let add_clip t clip =
  let name = clip.Video.Clip.name in
  with_lock t.catalog_lock (fun () ->
      Hashtbl.replace t.catalog name
        { clip; lock = Mutex.create (); profiled = None });
  (* A replaced clip invalidates every prepared stream derived from
     the old one. *)
  with_lock t.cache_lock (fun () ->
      let stale =
        (* lint: allow L003 a removal set is order-free; every collected key is removed *)
        Hashtbl.fold
          (fun key _ acc -> if key.k_clip = name then key :: acc else acc)
          t.cache []
      in
      List.iter (Hashtbl.remove t.cache) stale)

let clip_names t =
  with_lock t.catalog_lock (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.catalog [])
  |> List.sort compare

let find t name =
  match with_lock t.catalog_lock (fun () -> Hashtbl.find_opt t.catalog name) with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "unknown clip %S" name)

(* Double-checked under the clip's own lock: the first session in
   computes while later ones for the same clip block and then reuse
   the result, so a clip is profiled exactly once however many pool
   domains race on it. *)
let profile_stored ?pool stored =
  with_lock stored.lock (fun () ->
      match stored.profiled with
      | Some p -> p
      | None ->
        (* lint: allow C004 profile-once by design: the clip's own leaf
           lock serialises its first profile; no other lock is ever
           taken while holding it *)
        let p = Annotation.Annotator.profile ?pool stored.clip in
        stored.profiled <- Some p;
        p)

let profile ?pool t name = Result.map (profile_stored ?pool) (find t name)

let cache_stats t = with_lock t.cache_lock (fun () -> (t.hits, t.misses))

let cache_size t = with_lock t.cache_lock (fun () -> Hashtbl.length t.cache)

let build ?scene_params ?pool stored ~session =
  let profiled = profile_stored ?pool stored in
  let track =
    match session.Negotiation.mapping with
    | Negotiation.Server_side ->
      Annotation.Annotator.annotate_profiled ?scene_params
        ~device:session.Negotiation.device
        ~quality:session.Negotiation.quality profiled
    | Negotiation.Client_side ->
      (* Device-neutral: the client maps gains to registers with
         Annotation.Neutral.map_to_device after decoding. *)
      Annotation.Neutral.annotate ?scene_params
        ~quality:session.Negotiation.quality profiled
  in
  {
    session;
    track;
    annotation_bytes = Annotation.Encoding.encode track;
    compensated = Annotation.Compensate.clip stored.clip track;
  }

(* Shed fallback: a passthrough stream — original clip, single
   full-backlight entry covering every frame — that costs nothing to
   build. The bottom rung of the degradation ladder, served when the
   bulkhead refuses the annotation build. Not cached: a later
   admitted prepare must still build the real thing. *)
let passthrough stored ~session =
  let clip = stored.clip in
  let frames = clip.Video.Clip.frame_count in
  let entries =
    if frames = 0 then [||]
    else
      [|
        {
          Annotation.Track.first_frame = 0;
          frame_count = frames;
          register = 255;
          compensation = 1.;
          effective_max = 255;
        };
      |]
  in
  let track =
    Annotation.Track.make ~clip_name:clip.Video.Clip.name
      ~device_name:session.Negotiation.device.Display.Device.name
      ~quality:session.Negotiation.quality ~fps:clip.Video.Clip.fps
      ~total_frames:frames entries
  in
  {
    session;
    track;
    annotation_bytes = Annotation.Encoding.encode track;
    compensated = clip;
  }

let prepare ?scene_params ?pool ?bulkhead t ~name ~session =
  Result.map
    (fun stored ->
      (* The expensive annotation build runs inside the bulkhead when
         one is given; a shed serves the passthrough instead of
         building, and never enters the cache (a later admitted
         prepare must still build the real thing). [insert] is what an
         admitted build does with its result. *)
      let guarded ~insert () =
        match bulkhead with
        | None -> insert (build ?scene_params ?pool stored ~session)
        | Some b ->
          Resilience.Bulkhead.run b
            ~shed:(fun () -> passthrough stored ~session)
            (fun () -> insert (build ?scene_params ?pool stored ~session))
      in
      match scene_params with
      | Some _ ->
        (* Non-default scene parameters are not keyed; bypass the
           cache rather than serve a mismatched stream. *)
        guarded ~insert:Fun.id ()
      | None -> (
        let key =
          {
            k_clip = name;
            k_quality = session.Negotiation.quality;
            k_device = session.Negotiation.device.Display.Device.name;
            k_mapping = session.Negotiation.mapping;
          }
        in
        match
          with_lock t.cache_lock (fun () ->
              match Hashtbl.find_opt t.cache key with
              | Some p ->
                t.hits <- t.hits + 1;
                Obs.Metrics.Counter.incr obs_cache_hits;
                Some p
              | None ->
                t.misses <- t.misses + 1;
                Obs.Metrics.Counter.incr obs_cache_misses;
                None)
        with
        | Some p -> p
        | None ->
          (* Built outside [cache_lock]: annotation is the expensive
             part and must not serialise unrelated sessions. Two
             racing sessions may both build — the results are
             deterministic and identical, so first-in wins and the
             duplicate is dropped. *)
          let insert p =
            with_lock t.cache_lock (fun () ->
                match Hashtbl.find_opt t.cache key with
                | Some existing -> existing
                | None ->
                  Hashtbl.add t.cache key p;
                  p)
          in
          guarded ~insert ()))
    (find t name)

(* Any prepared track for [clip] on [device], whatever quality or
   mapping it was built at — the degradation ladder's [stale] rung.
   Deterministic pick: the smallest matching key (keys order by
   quality then mapping once clip and device are fixed), so equal
   cache contents always serve the same stale stream. *)
let stale_annotation t ~clip ~device =
  with_lock t.cache_lock (fun () ->
      (* lint: allow L003 candidates are sorted before the pick below *)
      Hashtbl.fold
        (fun key p acc ->
          if key.k_clip = clip && key.k_device = device then
            (key, p) :: acc
          else acc)
        t.cache [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> function
  | [] -> None
  | (_, p) :: _ -> Some p

let prepare_many ?scene_params ?pool ?bulkhead t specs =
  let one (name, session) = prepare ?scene_params ?bulkhead t ~name ~session in
  match pool with
  | None -> List.map one specs
  | Some pool ->
    (* Fan the independent (clip x session) builds across the pool —
       the Fig 9/10 multi-quality / multi-device sweep in parallel.
       Results keep the input order; the inner builds run sequentially
       within their task (the fan-out is already using the domains). *)
    Par.Pool.map_list pool one specs

let encode_video ?params t ~name =
  Result.map
    (fun stored -> Codec.Encoder.encode_clip ?params stored.clip)
    (find t name)
