type stored = {
  clip : Video.Clip.t;
  mutable profiled : Annotation.Annotator.profiled option;
}

type t = { catalog : (string, stored) Hashtbl.t }

type prepared = {
  session : Negotiation.session;
  track : Annotation.Track.t;
  annotation_bytes : string;
  compensated : Video.Clip.t;
}

let create () = { catalog = Hashtbl.create 16 }

let add_clip t clip =
  Hashtbl.replace t.catalog clip.Video.Clip.name { clip; profiled = None }

let clip_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.catalog [] |> List.sort compare

let find t name =
  match Hashtbl.find_opt t.catalog name with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "unknown clip %S" name)

let profile t name =
  Result.map
    (fun stored ->
      match stored.profiled with
      | Some p -> p
      | None ->
        let p = Annotation.Annotator.profile stored.clip in
        stored.profiled <- Some p;
        p)
    (find t name)

let prepare ?scene_params t ~name ~session =
  Result.bind (find t name) (fun stored ->
      Result.map
        (fun profiled ->
          let track =
            match session.Negotiation.mapping with
            | Negotiation.Server_side ->
              Annotation.Annotator.annotate_profiled ?scene_params
                ~device:session.Negotiation.device
                ~quality:session.Negotiation.quality profiled
            | Negotiation.Client_side ->
              (* Device-neutral: the client maps gains to registers with
                 Annotation.Neutral.map_to_device after decoding. *)
              Annotation.Neutral.annotate ?scene_params
                ~quality:session.Negotiation.quality profiled
          in
          {
            session;
            track;
            annotation_bytes = Annotation.Encoding.encode track;
            compensated = Annotation.Compensate.clip stored.clip track;
          })
        (profile t name))

let encode_video ?params t ~name =
  Result.map (fun stored -> Codec.Encoder.encode_clip ?params stored.clip) (find t name)
