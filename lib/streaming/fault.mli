(** Deterministic fault injection for the streaming substrate.

    The wireless hop of Fig 1 is modelled elsewhere as i.i.d. Bernoulli
    loss, but real 802.11 links misbehave in richer ways: losses arrive
    in bursts (interference, fading), delivered bytes flip, packets
    arrive out of order or late, and throughput collapses mid-stream
    when the user walks away from the access point. This module bundles
    those failure modes into one composable, seeded description that
    can be applied anywhere {!Transport.bernoulli_loss} is used today.

    Everything is driven by {!Image.Prng}: the same fault description
    and seed always produce the same packet fates, so chaos experiments
    are bit-reproducible and failures found by the sweep can be
    replayed. *)

type loss_model =
  | No_loss
  | Bernoulli of float  (** i.i.d. loss probability *)
  | Gilbert of {
      p_enter_bad : float;  (** good→bad transition probability *)
      p_exit_bad : float;  (** bad→good transition probability *)
      loss_good : float;  (** loss probability in the good state *)
      loss_bad : float;  (** loss probability in the bad state *)
    }
      (** Two-state Gilbert–Elliott burst-loss channel. The chain
          starts in its stationary distribution so short packet trains
          still see the configured mean loss. *)

type collapse = {
  at_fraction : float;  (** stream progress in [0, 1] where it happens *)
  factor : float;  (** remaining bandwidth fraction, in (0, 1] *)
}
(** Mid-stream bandwidth collapse: from [at_fraction] of the stream
    onward, transfers take [1 / factor] times as long. *)

type t = {
  loss : loss_model;
  corrupt_rate : float;  (** per-byte flip probability on delivered packets *)
  reorder_rate : float;
      (** probability a delivered packet is displaced past its decode
          deadline — indistinguishable from loss to the receiver, but
          repairable by retransmission *)
  jitter_s : float;  (** max uniform extra delay per delivery, seconds *)
  collapse : collapse option;
}

val none : t
(** No faults at all: every packet delivered intact and on time. *)

val bernoulli : rate:float -> t
(** i.i.d. loss, matching {!Transport.bernoulli_loss} semantics. *)

val gilbert :
  ?loss_good:float -> ?loss_bad:float -> mean_loss:float ->
  burst_length:float -> unit -> t
(** [gilbert ~mean_loss ~burst_length ()] builds a Gilbert–Elliott
    channel from the two numbers papers quote: the long-run loss
    fraction and the mean number of consecutive bad-state packets.
    With the defaults ([loss_good = 0], [loss_bad = 1]):
    [p_exit_bad = 1 / burst_length] and
    [p_enter_bad = p_exit_bad * pi / (1 - pi)] where [pi = mean_loss].
    Raises [Invalid_argument] when [mean_loss] is not strictly between
    [loss_good] and [loss_bad], or [burst_length < 1]. *)

val loss_mask : t -> seed:int -> n:int -> bool array
(** [loss_mask t ~seed ~n] marks which of [n] deliveries are lost
    under [t.loss] alone (no corruption or reorder) — a drop-in for
    {!Transport.bernoulli_loss} on the video path. *)

val apply : ?t_s:float -> t -> seed:int -> string array -> string option array
(** [apply t ~seed packets] pushes a packet train through the channel:
    lost and deadline-displaced packets come back [None]; delivered
    packets may have bytes flipped ([corrupt_rate]). Delivered content
    is shared with the input when untouched. [t_s] (default 0) stamps
    the {!Obs.Journal.Channel} event this pass records when a journal
    is installed — it does not affect the channel itself. *)

val delay_s : t -> seed:int -> index:int -> float
(** Deterministic jitter for delivery [index], uniform in
    [\[0, jitter_s)]. Random-access: independent of other indices. *)

val bandwidth_factor : t -> progress:float -> float
(** Remaining bandwidth fraction at [progress] ∈ [0, 1] of the stream:
    [1] before the collapse point (or when no collapse is configured),
    [collapse.factor] after. Divide nominal throughput by the result
    to get effective transfer times. *)

val parse : string -> (t, string) result
(** Parse the text fault-profile format ([key = value] lines, [#]
    comments):

    {v
    model          = none | bernoulli | gilbert
    rate           = FLOAT   # bernoulli loss probability
    mean_loss      = FLOAT   # gilbert long-run loss fraction
    burst_length   = FLOAT   # gilbert mean burst length (packets)
    loss_good      = FLOAT   # gilbert per-state loss, optional
    loss_bad       = FLOAT
    corrupt        = FLOAT   # per-byte corruption probability
    reorder        = FLOAT   # deadline-displacement probability
    jitter_ms      = FLOAT   # max per-delivery jitter
    collapse_at    = FLOAT   # stream fraction where bandwidth drops
    collapse_factor = FLOAT  # remaining bandwidth fraction
    v} *)

val load : path:string -> (t, string) result
(** [parse] on a file's contents; I/O errors become [Error]. *)

val pp : Format.formatter -> t -> unit
(** One-line human description, e.g.
    [gilbert(mean 10.0%, burst 4.0) corrupt 1e-3 jitter 5ms]. *)
