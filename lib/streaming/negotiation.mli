(** Session negotiation.

    §4.3: device-specific backlight levels "can be computed by either
    the server/proxy (client characteristics are sent during the
    initial negotiation phase), or by the client itself". The
    negotiation exchanges the client's device identity and desired
    quality; the server answers with the qualities it can serve and
    where the device-specific mapping will run. *)

type mapping_site =
  | Server_side  (** server knows the device and emits final registers *)
  | Client_side
      (** server emits device-neutral luminance factors; the client
          multiplies and looks its own table up *)

type client_hello = {
  device : Display.Device.t;
  requested_quality : Annotation.Quality_level.t;
}

type session = {
  device : Display.Device.t;
  quality : Annotation.Quality_level.t;
  mapping : mapping_site;
}

val offer_qualities : Annotation.Quality_level.t list
(** What the server advertises — the paper's five levels. *)

val negotiate :
  ?prefer:mapping_site -> client_hello -> (session, string) result
(** [negotiate hello] accepts any of the advertised qualities verbatim
    and snaps a [Custom] request to the nearest advertised level
    (the server pre-computes only the advertised grid, "same for all
    types of PDA clients"). Defaults to server-side mapping. *)

val pp_session : Format.formatter -> session -> unit
