(** Forward error correction for the annotation side channel.

    The video tolerates loss through concealment; the annotation track
    does not — a missing entry leaves the client without a backlight
    level for a whole scene. The track is tiny (tens of bytes), so
    protecting it is nearly free: packets are grouped and each group
    carries one XOR parity packet, recovering any single loss per
    group (the classic RTP FEC scheme). *)

type protected_payload = {
  packets : string array;
      (** data packets followed by one parity packet per group *)
  data_packets : int;
  group_size : int;
  packet_size : int;
  payload_length : int;
}

val protect : ?packet_size:int -> ?group_size:int -> string -> protected_payload
(** [protect payload] splits into [packet_size]-byte packets (default
    64 — annotation tracks rarely need more than a few) and appends one
    parity packet per [group_size] data packets (default 4). The
    payload may be empty. Raises [Invalid_argument] on non-positive
    sizes. *)

val overhead_ratio : protected_payload -> float
(** Extra bytes shipped relative to the payload. *)

val recover : protected_payload -> present:string option array -> (string, string) result
(** [recover t ~present] reassembles the payload from the packets that
    arrived ([present.(i) = None] means packet [i] was lost, data and
    parity slots alike). Any single loss per group is repaired from the
    parity; two or more losses in one group fail with [Error]. The
    [present] array must match [t.packets] in length, and packets that
    did arrive must carry their original content. *)

type recovery = {
  payload : string;
      (** reassembled payload at its original length; bytes of
          unrecovered groups are zero-filled so surviving spans keep
          their true offsets *)
  byte_ok : bool array;
      (** per payload byte: did it arrive (or get repaired)? Length
          equals [payload_length]. *)
  failed_groups : int list;  (** ascending group indices parity could not fix *)
  repaired_packets : int;  (** data packets rebuilt from parity *)
}

val recover_detail : protected_payload -> present:string option array -> recovery
(** Like {!recover} but never all-or-nothing: groups that lost more
    than parity can repair are zero-filled and reported in
    [failed_groups] instead of failing the whole payload, so the
    caller can salvage every intact span ({!Annotation.Encoding.decode_partial}).
    Raises [Invalid_argument] on a [present] length mismatch. *)

val transmit :
  protected_payload -> rate:float -> seed:int -> string option array
(** Bernoulli packet loss over the packet train, for simulations. *)
