type t = {
  bandwidth_bps : float;
  packet_payload_bytes : int;
  per_packet_overhead_bytes : int;
}

let make ~bandwidth_bps ~packet_payload_bytes ~per_packet_overhead_bytes =
  if bandwidth_bps <= 0. then invalid_arg "Netsim.make: bandwidth must be positive";
  if packet_payload_bytes <= 0 then invalid_arg "Netsim.make: payload must be positive";
  if per_packet_overhead_bytes < 0 then invalid_arg "Netsim.make: negative overhead";
  { bandwidth_bps; packet_payload_bytes; per_packet_overhead_bytes }

let wlan_80211b =
  make ~bandwidth_bps:5_000_000. ~packet_payload_bytes:1400
    ~per_packet_overhead_bytes:54

let packet_count link bytes =
  if bytes < 0 then invalid_arg "Netsim.packet_count: negative size";
  if bytes = 0 then 0
  else (bytes + link.packet_payload_bytes - 1) / link.packet_payload_bytes

let wire_bytes link bytes =
  bytes + (packet_count link bytes * link.per_packet_overhead_bytes)

let obs_wire_packets =
  Obs.counter ~help:"Packets accounted for simulated transfers"
    "streaming_wire_packets_total" []

let obs_wire_bytes =
  Obs.counter ~help:"Wire bytes (payload + per-packet overhead) transferred"
    "streaming_wire_bytes_total" []

let transfer_time_s link bytes =
  if Obs.enabled () then begin
    Obs.Metrics.Counter.incr obs_wire_packets ~by:(packet_count link bytes);
    Obs.Metrics.Counter.incr obs_wire_bytes ~by:(wire_bytes link bytes)
  end;
  float_of_int (wire_bytes link bytes) *. 8. /. link.bandwidth_bps

let annotation_overhead_ratio link ~video_bytes ~annotation_bytes =
  if video_bytes <= 0 then invalid_arg "Netsim: empty video";
  let video_wire = wire_bytes link video_bytes in
  let combined_wire = wire_bytes link (video_bytes + annotation_bytes) in
  float_of_int (combined_wire - video_wire) /. float_of_int video_wire
