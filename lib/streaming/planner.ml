type plan = {
  quality : Annotation.Quality_level.t;
  average_power_mw : float;
  projected_runtime_hours : float;
}

let project ?options ~device ~quality profiled =
  let report = Playback.run_profiled ?options ~device ~quality profiled in
  report.Playback.total_energy_mj /. report.Playback.duration_s

let plan ?options ~battery ~target_hours ~device profiled =
  if target_hours <= 0. then invalid_arg "Planner.plan: target must be positive";
  let plan_for quality =
    let average_power_mw = project ?options ~device ~quality profiled in
    {
      quality;
      average_power_mw;
      projected_runtime_hours =
        Power.Battery.runtime_hours battery ~average_power_mw;
    }
  in
  let rec search = function
    | [] -> assert false
    | [ last ] ->
      let p = plan_for last in
      if p.projected_runtime_hours >= target_hours then Ok p else Error p
    | quality :: rest ->
      let p = plan_for quality in
      if p.projected_runtime_hours >= target_hours then Ok p else search rest
  in
  search Annotation.Quality_level.standard_grid

let pp_plan ppf p =
  Format.fprintf ppf "quality %s: %.0f mW average, %.1f h runtime"
    (Annotation.Quality_level.label p.quality)
    p.average_power_mw p.projected_runtime_hours
