(** Backlight transition smoothing.

    §4.3 tunes the scene thresholds "for minimizing visible spikes";
    related work (QABS [4]) instead post-processes the backlight signal
    to prevent abrupt switching. This module provides that post-pass as
    a client-side option: *dimming* is slew-rate limited (a hard drop
    spread over several frames), while *brightening* stays immediate —
    the asymmetry that keeps the smoothing quality-safe, because the
    smoothed register is never below what the compensated stream needs
    (a brighter-than-planned backlight only overshoots brightness
    transiently; a darker one would add clipping). *)

val slew_limit : max_dim_step:int -> int array -> int array
(** [slew_limit ~max_dim_step registers] caps every frame-to-frame
    *decrease* at [max_dim_step] register counts; increases pass
    through. The result is pointwise at least the input. Raises
    [Invalid_argument] for a non-positive step. *)

val largest_dim_step : int array -> int
(** The largest one-frame register decrease in a track (the "visible
    spike" metric); 0 when the track never dims abruptly. *)

type cost = {
  extra_energy_fraction : float;
      (** additional backlight energy the smoothing spends, relative to
          the unsmoothed track, on the register-proportional power law.
          [infinity] when the unsmoothed track spends nothing and the
          smoothed one does (a relative cost over a zero base has no
          finite value — reporting 0 there would mask the spend); [0.]
          when both spend nothing *)
  extra_energy_mj : float;
      (** the same spend as an absolute account in millijoules at the
          given frame rate — meaningful even when the relative fraction
          degenerates *)
  smoothed_largest_dim_step : int;
  original_largest_dim_step : int;
}

val smoothing_cost :
  ?fps:float -> device:Display.Device.t -> max_dim_step:int -> int array -> cost
(** [smoothing_cost ~device ~max_dim_step registers] quantifies the
    smoothness/energy trade on a register track. [?fps] (default 12.,
    the {!Video.Clip_gen} default) converts per-frame backlight power
    into the absolute [extra_energy_mj]; raises [Invalid_argument] when
    not finite and positive. *)
