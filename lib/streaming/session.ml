type degradation = Full_backlight | Neighbour_clamp

type config = {
  device : Display.Device.t;
  quality : Annotation.Quality_level.t;
  mapping : Negotiation.mapping_site;
  link : Netsim.t;
  loss_rate : float;
  gop : int;
  ramp_step : int option;
  cpu_busy_fraction : float;
  seed : int;
  fault : Fault.t option;
  nack_budget_s : float;
  degradation : degradation;
  resilience : Resilience.Profile.t option;
  stale_track : Annotation.Track.t option;
}

let default_config ~device =
  {
    device;
    quality = Annotation.Quality_level.Loss_10;
    mapping = Negotiation.Server_side;
    link = Netsim.wlan_80211b;
    loss_rate = 0.;
    gop = 12;
    ramp_step = None;
    cpu_busy_fraction = 0.6;
    seed = 1;
    fault = None;
    nack_budget_s = 0.04;
    degradation = Full_backlight;
    resilience = None;
    stale_track = None;
  }

type report = {
  config : config;
  frames : int;
  duration_s : float;
  video_bytes : int;
  annotation_bytes : int;
  annotations_survived : bool;
  video_mean_psnr : float;
  concealed_frames : int;
  backlight_savings : float;
  cpu_savings : float;
  radio_savings : float;
  device_savings : float;
  device_energy_mj : float;
  baseline_energy_mj : float;
  degraded_scenes : int;
  retransmissions : int;
  corrupt_records : int;
}

(* Whole-device energy: per-frame backlight at its register, the DVFS
   CPU account, the radio account, and the constant components. The
   baseline uses register 255, full CPU speed and an always-on
   radio. *)
let device_energy ~config ~dt_s ~registers ~cpu_energy_mj ~radio_energy_mj =
  let d = config.device in
  let duration = dt_s *. float_of_int (Array.length registers) in
  let backlight =
    Array.fold_left
      (fun acc register ->
        acc +. (Power.Model.backlight_power_mw d ~on:true ~register *. dt_s))
      0. registers
  in
  let constant =
    (d.Display.Device.lcd_logic_power_mw +. d.Display.Device.base_power_mw) *. duration
  in
  backlight +. cpu_energy_mj +. radio_energy_mj +. constant

let obs_sessions =
  let family outcome =
    Obs.counter ~help:"End-to-end sessions executed" "streaming_sessions_total"
      [ ("outcome", outcome) ]
  in
  let ok = family "ok" and error = family "error" in
  fun outcome -> if outcome = `Ok then ok else error

let obs_annotation_outcomes =
  let family result =
    Obs.counter ~help:"Annotation side-channel survival over the lossy hop"
      "streaming_annotation_outcomes_total"
      [ ("result", result) ]
  in
  let recovered = family "recovered" and lost = family "lost" in
  fun survived -> if survived then recovered else lost

let obs_frame_latency =
  Obs.histogram ~help:"Simulated per-frame wire transfer time on the link"
    ~buckets:[| 1e-4; 5e-4; 1e-3; 5e-3; 1e-2; 5e-2; 0.1; 0.5 |]
    "streaming_frame_latency_seconds" []

let obs_deadline_misses =
  Obs.counter ~help:"Frames whose wire transfer exceeded the frame period"
    "streaming_deadline_misses_total" []

(* Window series this module feeds, declared up front so the offline
   SLO checker knows them without running a session. *)
let s_deadline_miss = Obs.Monitor.declare_series "deadline_miss"
let s_backlight_switches = Obs.Monitor.declare_series "backlight_switches"
let s_power_cpu_mj = Obs.Monitor.declare_series "power_cpu_mj"
let s_power_radio_mj = Obs.Monitor.declare_series "power_radio_mj"
let s_power_device_total_mj = Obs.Monitor.declare_series "power_device_total_mj"

let s_records_corrupt =
  Obs.Monitor.declare_series "annot_records_corrupt_total"

let s_degraded_scenes = Obs.Monitor.declare_series "degraded_scenes_total"

let obs_energy component =
  Obs.gauge ~help:"Last measured energy per accounted component (mJ)"
    "power_energy_mj"
    [ ("component", component) ]

let obs_forced_first_frame =
  Obs.counter
    ~help:"First video frames force-delivered despite the loss model"
    "forced_first_frame_deliveries_total" []

let obs_degraded_scenes =
  Obs.counter
    ~help:"Scenes that fell back to a safe backlight level because their \
           annotation record was lost or corrupt"
    "degraded_scenes_total" []

let span = Obs.Trace.with_span

(* Rebuild a full annotation track from a partial decode: every
   surviving record keeps its scene, every gap is filled with a safe
   level. Full backlight (register 255, no compensation) risks no
   quality; when the policy allows it and both intact neighbours of a
   gap agree on their level, the gap is clamped to that level instead —
   scene boundaries rarely move, so agreeing neighbours usually bracket
   a scene that looked like them. Returns the patched track and the
   number of degraded scenes (records lost or corrupt). *)
let patch_partial policy (p : Annotation.Encoding.partial) =
  let intact =
    Array.to_list p.entries |> List.filter_map (fun e -> e)
  in
  let degraded =
    Array.length p.entries - List.length intact
  in
  let out = ref [] in
  let pos = ref 0 in
  let prev = ref None in
  let filler ~first ~count ~next_entry =
    match (policy, !prev, next_entry) with
    | ( Neighbour_clamp,
        Some (a : Annotation.Track.entry),
        Some (b : Annotation.Track.entry) )
      when a.register = b.register && a.effective_max = b.effective_max ->
      {
        Annotation.Track.first_frame = first;
        frame_count = count;
        register = a.register;
        compensation = Float.max a.compensation b.compensation;
        effective_max = a.effective_max;
      }
    | _ ->
      (* Quality-safe default: never dim on a guessed annotation. *)
      {
        Annotation.Track.first_frame = first;
        frame_count = count;
        register = 255;
        compensation = 1.;
        effective_max = 255;
      }
  in
  let fill_gap until next_entry =
    if until > !pos then begin
      out := filler ~first:!pos ~count:(until - !pos) ~next_entry :: !out;
      pos := until
    end
  in
  List.iter
    (fun (e : Annotation.Track.entry) ->
      fill_gap e.first_frame (Some e);
      out := e :: !out;
      pos := e.first_frame + e.frame_count;
      prev := Some e)
    intact;
  fill_gap p.total_frames None;
  let track =
    Annotation.Track.make ~clip_name:p.clip_name ~device_name:p.device_name
      ~quality:p.quality ~fps:p.fps ~total_frames:p.total_frames
      (Array.of_list (List.rev !out))
  in
  (track, degraded)

let degradation_label = function
  | Full_backlight -> "full_backlight"
  | Neighbour_clamp -> "neighbour_clamp"

let obs_watchdog_trips =
  Obs.counter
    ~help:"Stage-deadline watchdog trips that forced the degradation ladder"
    "resilience_watchdog_trips_total" []

(* A stale prepared track can stand in for a missing record only when
   its scene layout matches: same frame coverage, same entry grid.
   Scene boundaries come from profiling the clip — not from device or
   quality — so any earlier preparation of the same clip qualifies. *)
let stale_usable ~stale (p : Annotation.Encoding.partial) =
  match stale with
  | Some (st : Annotation.Track.t)
    when Array.length st.Annotation.Track.entries = Array.length p.entries
         && st.Annotation.Track.total_frames = p.total_frames ->
    let aligned = ref true in
    Array.iteri
      (fun i entry ->
        match entry with
        | Some (e : Annotation.Track.entry) ->
          let se = st.Annotation.Track.entries.(i) in
          if
            se.Annotation.Track.first_frame <> e.first_frame
            || se.Annotation.Track.frame_count <> e.frame_count
          then aligned := false
        | None -> ())
      p.entries;
    if !aligned then Some st.Annotation.Track.entries else None
  | _ -> None

(* Ladder-aware patching: like [patch_partial], but every missing
   record resolves at the shallowest enabled degradation rung — the
   stale cached entry for its scene when one exists, the neighbour
   clamp when both intact neighbours agree, full backlight otherwise —
   and each non-fresh resolution is journaled as a Ladder_step. *)
let patch_partial_ladder ladder ~stale ~t_s (p : Annotation.Encoding.partial) =
  let module D = Resilience.Degrade in
  let stale_entries =
    if D.enabled ladder D.Stale_cache then stale_usable ~stale p else None
  in
  let out = ref [] in
  let pos = ref 0 in
  let prev = ref None in
  let degraded = ref 0 in
  let last_fill_step = ref D.Full_backlight in
  let clamp_enabled = D.enabled ladder D.Neighbour_clamp in
  let note i step = D.note ladder ~t_s ~scene:i step in
  let n = Array.length p.entries in
  (* Next intact entry at or after record [i] — the gap filler's
     right-hand neighbour. *)
  let next_intact i =
    let rec loop j =
      if j >= n then None
      else match p.entries.(j) with Some e -> Some e | None -> loop (j + 1)
    in
    loop i
  in
  let emit (e : Annotation.Track.entry) =
    out := e :: !out;
    pos := e.first_frame + e.frame_count;
    prev := Some e
  in
  Array.iteri
    (fun i entry ->
      match entry with
      | Some (e : Annotation.Track.entry) ->
        note i D.Fresh;
        emit e
      | None -> (
        incr degraded;
        match stale_entries with
        | Some st ->
          note i D.Stale_cache;
          emit st.(i)
        | None -> (
          (* No per-scene stale entry: clamp between agreeing intact
             neighbours, full backlight otherwise — the same fill rule
             as [patch_partial], journaled rung by rung. The gap's
             frame span is recovered from the neighbours. *)
          let next = next_intact (i + 1) in
          let until =
            match next with
            | Some e -> e.Annotation.Track.first_frame
            | None -> p.total_frames
          in
          (* Consecutive missing records merge into one filler entry;
             only the first of the run emits it. *)
          let run_start = !pos in
          if until > run_start then begin
            let step, entry =
              match (!prev, next) with
              | Some (a : Annotation.Track.entry), Some b
                when clamp_enabled && a.register = b.register
                     && a.effective_max = b.effective_max ->
                ( D.Neighbour_clamp,
                  {
                    Annotation.Track.first_frame = run_start;
                    frame_count = until - run_start;
                    register = a.register;
                    compensation = Float.max a.compensation b.compensation;
                    effective_max = a.effective_max;
                  } )
              | _ ->
                ( D.Full_backlight,
                  {
                    Annotation.Track.first_frame = run_start;
                    frame_count = until - run_start;
                    register = 255;
                    compensation = 1.;
                    effective_max = 255;
                  } )
            in
            note i step;
            last_fill_step := step;
            out := entry :: !out;
            pos := until
          end
          else
            (* A later record of an already-filled run: it resolved at
               whatever rung the run head picked. *)
            note i !last_fill_step)))
    p.entries;
  let track =
    Annotation.Track.make ~clip_name:p.clip_name ~device_name:p.device_name
      ~quality:p.quality ~fps:p.fps ~total_frames:p.total_frames
      (Array.of_list (List.rev !out))
  in
  (track, !degraded)

(* Journal fields ride as non-negative varints; a non-finite or
   negative reading (an fps-0 clip record, a negative stage budget)
   must clamp instead of flowing through [int_of_float] as garbage —
   an unchecked negative would make the encoder raise mid-session.
   Finite positive readings are untouched, so valid sessions journal
   byte-identically. *)
let journal_clamp f =
  if Float.is_finite f && f > 0. then
    int_of_float (Float.round (Float.min f 1e15))
  else 0

(* --- poll-able session machine ------------------------------------------ *)

(* The warm-path inputs a prepared-stream cache can inject: everything
   the server side of a session computes that does not depend on the
   transmission seed. [run] never injects (it computes these inline,
   under the historical spans), so its behaviour is byte-identical to
   the pre-machine implementation; a fleet shard injects one shared
   [prepared_input] into thousands of machines. *)
type prepared_input = {
  track : Annotation.Track.t;
  annotation_payload : string;
  protected : Fec.protected_payload;
  encoded : Codec.Encoder.encoded;
  clean : Codec.Decoder.decoded option;
      (** reference decode of [encoded] for the PSNR account; [None]
          makes the machine decode it itself, like [run] always did *)
}

type transmitted = {
  survived : bool;
  client_track : Annotation.Track.t;
  t_degraded : int;
  t_resent : int;
  t_corrupt : int;
}

type playing = {
  registers : int array;
  dvfs : Dvfs_playback.report;
  radio : Radio.report;
  frame_bytes : int array;
  scene_start : bool array;
  mutable scene_idx : int;
      (* owned_by: the machine's driving caller, like m_stage below;
         a [playing] record lives inside one machine's stage and is
         never shared across domains *)
  received : Transport.received;
  clean : Codec.Decoder.decoded;
}

type stage =
  | Starting
  | Prepared of prepared_input
  | Transmitted of prepared_input * transmitted
  | Playing of prepared_input * transmitted * playing * int
  | Finalizing of prepared_input * transmitted * playing
  | Finished of (report, string) result

type machine = {
  m_config : config;
  m_clip : Video.Clip.t;
  m_frames : int;
  m_fps : float;
  m_dt_s : float;
  m_injected : prepared_input option;
  mutable m_stage : stage;  (* owned_by: the driving caller; machines are not shared across domains *)
}

type progress = [ `Setup | `Frame of int | `Finalize | `Complete ]

let create ?prepared config clip =
  if config.loss_rate < 0. || config.loss_rate > 1. then
    invalid_arg "Session.run: loss rate out of [0, 1]";
  let frames = clip.Video.Clip.frame_count in
  if frames = 0 then invalid_arg "Session.run: empty clip";
  let fps = clip.Video.Clip.fps in
  {
    m_config = config;
    m_clip = clip;
    m_frames = frames;
    m_fps = fps;
    m_dt_s = 1. /. fps;
    m_injected = prepared;
    m_stage = Starting;
  }

let progress m =
  match m.m_stage with
  | Starting | Prepared _ | Transmitted _ -> `Setup
  | Playing (_, _, _, i) -> `Frame i
  | Finalizing _ -> `Finalize
  | Finished _ -> `Complete

let result m = match m.m_stage with Finished r -> Some r | _ -> None

let frames m = m.m_frames

let dt_s m = m.m_dt_s

(* Build the warm-path artifacts a prepared-stream cache injects into
   [create ?prepared]: the server-side work (annotate, protect,
   encode) plus the reference decode, computed once per clip instead
   of once per session. Unspanned and un-journaled — cache fills are
   the shard's work, not any one session's. [?track] lets a caller
   that already ran the server's annotation pipeline (Server.prepare,
   with its bulkhead and cache) reuse that track. *)
let prepare_input ?track config clip =
  let track =
    match track with
    | Some t -> t
    | None -> (
      let profiled = Annotation.Annotator.profile clip in
      match config.mapping with
      | Negotiation.Server_side ->
        Annotation.Annotator.annotate_profiled ~device:config.device
          ~quality:config.quality profiled
      | Negotiation.Client_side ->
        Annotation.Neutral.annotate ~quality:config.quality profiled)
  in
  let annotation_payload = Annotation.Encoding.encode track in
  let protected =
    Fec.protect ~packet_size:24 ~group_size:3 annotation_payload
  in
  let encoded =
    Codec.Encoder.encode_clip
      ~params:{ Codec.Stream.default_params with gop = config.gop }
      clip
  in
  let clean =
    match Codec.Decoder.decode encoded.Codec.Encoder.data with
    | Ok c -> Some c
    | Error _ -> None
  in
  { track; annotation_payload; protected; encoded; clean }

(* Session start: journal + log, then the server-side stages (profile,
   annotate, protect, encode) — or the injected warm artifacts. *)
let step_start m =
  let config = m.m_config and clip = m.m_clip in
  let frames = m.m_frames and fps = m.m_fps in
  Obs.Journal.record ~t_s:0.
    (Obs.Journal.Session_start
       {
         clip = clip.Video.Clip.name;
         device = config.device.Display.Device.name;
         quality = Annotation.Quality_level.label config.quality;
         frames;
         fps_milli = journal_clamp (fps *. 1000.);
       });
  Obs.Log.info ~scope:"session" (fun () ->
      ( "session start: " ^ clip.Video.Clip.name,
        [
          ("clip", Obs.Json.String clip.Video.Clip.name);
          ("device", Obs.Json.String config.device.Display.Device.name);
          ( "quality",
            Obs.Json.String (Annotation.Quality_level.label config.quality) );
          ("frames", Obs.Json.Int frames);
        ] ));
  let prep =
    match m.m_injected with
    | Some p -> p
    | None ->
      (* Server side: annotate, encode, protect. *)
      let profiled =
        span "session.profile" (fun () -> Annotation.Annotator.profile clip)
      in
      let track, annotation_payload, protected =
        span "session.annotate" @@ fun () ->
        let track =
          match config.mapping with
          | Negotiation.Server_side ->
            Annotation.Annotator.annotate_profiled ~device:config.device
              ~quality:config.quality profiled
          | Negotiation.Client_side ->
            Annotation.Neutral.annotate ~quality:config.quality profiled
        in
        let annotation_payload = Annotation.Encoding.encode track in
        let protected =
          Fec.protect ~packet_size:24 ~group_size:3 annotation_payload
        in
        (track, annotation_payload, protected)
      in
      let encoded =
        span "session.encode" @@ fun () ->
        Codec.Encoder.encode_clip
          ~params:{ Codec.Stream.default_params with gop = config.gop }
          clip
      in
      { track; annotation_payload; protected; encoded; clean = None }
  in
  m.m_stage <- Prepared prep

(* The wireless hop. *)
let step_transmit m (prep : prepared_input) =
  let config = m.m_config in
  let track = prep.track and protected_annotations = prep.protected in
  let annotations_survived, client_track, degraded_scenes, retransmissions,
      corrupt_records =
    span "session.transmit" @@ fun () ->
    match config.fault with
    | None -> (
      (* Legacy Bernoulli path: all-or-nothing recovery, bit-identical
         to the pre-fault-injection behaviour. *)
      let annotation_arrival =
        Fec.transmit protected_annotations ~rate:config.loss_rate
          ~seed:config.seed
      in
      match Fec.recover protected_annotations ~present:annotation_arrival with
      | Ok payload -> (
        match Annotation.Encoding.decode payload with
        | Ok wire_track -> (
          ( true,
            (match config.mapping with
            | Negotiation.Server_side -> wire_track
            | Negotiation.Client_side ->
              Annotation.Neutral.map_to_device config.device wire_track),
            0, 0, 0 ))
        | Error _ -> (false, track, 0, 0, 0))
      | Error _ -> (false, track, 0, 0, 0))
    | Some fault -> (
      (* Resilience control plane, active only when a profile is
         configured: a retry policy for the NACK schedule, a breaker
         gating its rounds, and the degradation ladder the patching
         below walks. With no profile every path reduces to the
         historical code bit for bit. *)
      let profile = config.resilience in
      let ladder =
        Option.map
          (fun (p : Resilience.Profile.t) ->
            Resilience.Degrade.create
              ?steps:
                (match p.Resilience.Profile.ladder with
                | [] -> None
                | l -> Some l)
              ())
          profile
      in
      let breaker =
        match profile with
        | Some { Resilience.Profile.breaker = Some bc; _ } ->
          Some (Resilience.Breaker.create ~config:bc ~name:"nack" ())
        | _ -> None
      in
      let retry_policy =
        Option.bind profile (fun p -> p.Resilience.Profile.retry)
      in
      let arrival =
        Fault.apply fault ~seed:config.seed protected_annotations.Fec.packets
      in
      let arrival, nack =
        if config.nack_budget_s > 0. then
          Transport.nack_retransmit ?policy:retry_policy ?breaker ~fault
            ~link:config.link ~budget_s:config.nack_budget_s
            ~seed:(config.seed + 31)
            ~packets:protected_annotations.Fec.packets arrival
        else (arrival, Transport.no_nack)
      in
      let recovery = Fec.recover_detail protected_annotations ~present:arrival in
      let resent = nack.Transport.packets_retransmitted in
      let journal_t_s = nack.Transport.nack_time_s in
      let policy_label = degradation_label config.degradation in
      (* Stage-deadline watchdog: annotations that arrive after the
         transmit deadline are as good as lost — trip the ladder
         instead of pretending they were on time. *)
      let watchdog_tripped =
        match profile with
        | Some { Resilience.Profile.stage_deadline_s = Some d; _ }
          when nack.Transport.nack_time_s > d ->
          Obs.Metrics.Counter.incr obs_watchdog_trips;
          Obs.Journal.record ~t_s:journal_t_s
            (Obs.Journal.Watchdog_trip
               {
                 stage = "transmit";
                 budget_us = journal_clamp (d *. 1e6);
                 over_us =
                   journal_clamp ((nack.Transport.nack_time_s -. d) *. 1e6);
               });
          true
        | _ -> false
      in
      let mapped t =
        match config.mapping with
        | Negotiation.Server_side -> t
        | Negotiation.Client_side ->
          Annotation.Neutral.map_to_device config.device t
      in
      (* The whole track fell back (header unusable, nothing intact,
         or the watchdog tripped): with a ladder and a stale cached
         track the session survives on yesterday's annotations;
         otherwise everything plays at full backlight. *)
      let whole_track_fallback ~degraded_count ~corrupt =
        match (ladder, config.stale_track) with
        | Some l, Some st
          when Resilience.Degrade.enabled l Resilience.Degrade.Stale_cache ->
          Resilience.Degrade.note l ~t_s:journal_t_s ~scene:(-1)
            Resilience.Degrade.Stale_cache;
          ( true,
            mapped st,
            Array.length st.Annotation.Track.entries,
            resent,
            corrupt )
        | Some l, _ ->
          Resilience.Degrade.note l ~t_s:journal_t_s ~scene:(-1)
            Resilience.Degrade.Full_backlight;
          (false, track, degraded_count, resent, corrupt)
        | None, _ -> (false, track, degraded_count, resent, corrupt)
      in
      Obs.Journal.record ~t_s:journal_t_s
        (Obs.Journal.Fec_outcome
           {
             failed_groups = List.length recovery.Fec.failed_groups;
             repaired_packets = recovery.Fec.repaired_packets;
           });
      (* One Degradation event per annotation record that failed to
         decode. Record [i] occupies a fixed-size span of the payload
         right after the header, so the FEC byte map tells lost (bytes
         never arrived) from corrupt (bytes arrived, checks failed)
         apart. *)
      let journal_degradations (partial : Annotation.Encoding.partial) =
        if Obs.enabled () && Obs.Journal.installed () then begin
          let entries = partial.Annotation.Encoding.entries in
          let rs = Annotation.Encoding.record_size in
          let header_len =
            String.length recovery.Fec.payload - (Array.length entries * rs)
          in
          let byte_ok = recovery.Fec.byte_ok in
          Array.iteri
            (fun i e ->
              if e = None then begin
                let first = header_len + (i * rs) in
                let missing = ref false in
                for b = first to first + rs - 1 do
                  if b < 0 || b >= Array.length byte_ok || not byte_ok.(b) then
                    missing := true
                done;
                Obs.Journal.record ~t_s:journal_t_s
                  (Obs.Journal.Degradation
                     {
                       index = i;
                       trigger =
                         (if !missing then Obs.Journal.Record_lost
                          else Obs.Journal.Record_corrupt);
                       policy = policy_label;
                     });
                Obs.Log.warn ~scope:"session" (fun () ->
                    ( Printf.sprintf "annotation record %d %s; degrading scene"
                        i
                        (if !missing then "lost" else "corrupt"),
                      [
                        ("record", Obs.Json.Int i);
                        ( "trigger",
                          Obs.Json.String
                            (if !missing then "lost" else "corrupt") );
                        ("policy", Obs.Json.String policy_label);
                      ] ))
              end)
            entries
        end
      in
      if watchdog_tripped then
        whole_track_fallback
          ~degraded_count:(Array.length track.Annotation.Track.entries)
          ~corrupt:0
      else
        match
          Annotation.Encoding.decode_partial ~byte_ok:recovery.Fec.byte_ok
            recovery.Fec.payload
        with
        | Error _ ->
          (* Header gone (or v1 payload damaged): nothing placeable
             survived, every scene plays at full backlight — or on the
             stale cached track when the ladder offers one. *)
          Obs.Journal.record ~t_s:journal_t_s
            (Obs.Journal.Degradation
               {
                 index = -1;
                 trigger = Obs.Journal.Header_lost;
                 policy = policy_label;
               });
          Obs.Log.warn ~scope:"session" (fun () ->
              ( "annotation header lost; whole clip plays at full backlight",
                [ ("policy", Obs.Json.String policy_label) ] ));
          whole_track_fallback
            ~degraded_count:(Array.length track.Annotation.Track.entries)
            ~corrupt:0
        | Ok partial ->
          let intact =
            Array.fold_left
              (fun acc e -> if e = None then acc else acc + 1)
              0 partial.Annotation.Encoding.entries
          in
          let corrupt = partial.Annotation.Encoding.corrupt_records in
          journal_degradations partial;
          if intact = 0 then
            whole_track_fallback
              ~degraded_count:(Array.length partial.Annotation.Encoding.entries)
              ~corrupt
          else begin
            let patched, degraded =
              match ladder with
              | Some l ->
                patch_partial_ladder l ~stale:config.stale_track
                  ~t_s:journal_t_s partial
              | None -> patch_partial config.degradation partial
            in
            (true, mapped patched, degraded, resent, corrupt)
          end)
  in
  Obs.Metrics.Counter.incr (obs_annotation_outcomes annotations_survived);
  if degraded_scenes > 0 then
    Obs.Metrics.Counter.incr obs_degraded_scenes ~by:degraded_scenes;
  m.m_stage <-
    Transmitted
      ( prep,
        {
          survived = annotations_survived;
          client_track;
          t_degraded = degraded_scenes;
          t_resent = retransmissions;
          t_corrupt = corrupt_records;
        } )

(* Packetize the video, run it through the lossy channel, conceal the
   losses, and take the client playback decisions (backlight registers,
   DVFS schedule, radio bursts) that the per-frame replay then walks. *)
let step_decode m (prep : prepared_input) (trans : transmitted) =
  let config = m.m_config and frames = m.m_frames and fps = m.m_fps in
  let encoded = prep.encoded in
  let setup =
    Result.bind (Transport.packetize encoded) (fun packetized ->
        let lost =
          match config.fault with
          | None ->
            Transport.bernoulli_loss ~rate:config.loss_rate
              ~seed:(config.seed + 1) ~frames
          | Some fault ->
            Fault.loss_mask fault ~seed:(config.seed + 1) ~n:frames
        in
        (* The first frame is exempt from loss: with nothing decoded yet
           there is no picture to conceal with, so a real player would
           stall on ARQ until the stream starts. We model that as a
           forced delivery and count it instead of failing the run. *)
        if lost.(0) then Obs.Metrics.Counter.incr obs_forced_first_frame;
        lost.(0) <- false;
        Result.bind
          (Result.map_error
             (fun e -> "transport: " ^ e)
             (Transport.decode_with_concealment packetized ~lost))
          (fun received ->
            Result.map
              (fun (clean : Codec.Decoder.decoded) -> (received, clean))
              (match prep.clean with
              | Some clean -> Ok clean
              | None -> Codec.Decoder.decode encoded.Codec.Encoder.data)))
  in
  match setup with
  | Error e ->
    Obs.Metrics.Counter.incr (obs_sessions `Error);
    m.m_stage <- Finished (Error e)
  | Ok (received, clean) ->
    (* Client playback decisions. *)
    let registers =
      if trans.survived then begin
        let base = Annotation.Track.register_track trans.client_track in
        match config.ramp_step with
        | None -> base
        | Some max_dim_step -> Ramp.slew_limit ~max_dim_step base
      end
      else
        (* Quality-safe fallback: no annotations, no dimming. *)
        Array.make frames 255
    in
    let cycles = Dvfs_playback.decode_cycles encoded in
    let dvfs = Dvfs_playback.run ~fps cycles Dvfs_playback.Annotated_workload in
    Obs.Journal.record ~t_s:0.
      (Obs.Journal.Dvfs_choice
         {
           policy = Dvfs_playback.policy_name dvfs.Dvfs_playback.policy;
           mean_mhz = journal_clamp dvfs.Dvfs_playback.mean_frequency_mhz;
           misses = dvfs.Dvfs_playback.deadline_misses;
         });
    let frame_bytes =
      Array.map
        (fun bits -> (bits + 7) / 8)
        encoded.Codec.Encoder.frame_sizes_bits
    in
    let radio =
      Radio.run ~link:config.link ~fps ~gop:config.gop ~frame_bytes
        Radio.Annotated_bursts
    in
    let scene_start = Array.make frames false in
    Array.iter
      (fun (e : Annotation.Track.entry) ->
        if e.first_frame < frames then scene_start.(e.first_frame) <- true)
      trans.client_track.Annotation.Track.entries;
    m.m_stage <-
      Playing
        ( prep,
          trans,
          {
            registers;
            dvfs;
            radio;
            frame_bytes;
            scene_start;
            scene_idx = 0;
            received;
            clean;
          },
          0 )

(* Replay one delivered frame on the simulated clock: latency sample,
   deadline miss (transfer longer than a frame period) and backlight
   switch feed the health monitor, whose windows close every simulated
   second and at every scene cut (annotation-entry boundary). *)
let step_frame m (prep : prepared_input) (trans : transmitted)
    (play : playing) i =
  let config = m.m_config and frames = m.m_frames and dt_s = m.m_dt_s in
  if Obs.enabled () then begin
    let registers = play.registers in
    let bytes = play.frame_bytes.(i) in
    let start_s = float_of_int i *. dt_s in
    if i > 0 && play.scene_start.(i) then begin
      Obs.Monitor.scene_cut ~now_s:start_s;
      play.scene_idx <- play.scene_idx + 1;
      Obs.Journal.record ~t_s:start_s
        (Obs.Journal.Scene_cut { scene = play.scene_idx; frame = i })
    end;
    let transfer = Netsim.transfer_time_s config.link bytes in
    let transfer =
      match config.fault with
      | None -> transfer
      | Some f ->
        (transfer
        /. Fault.bandwidth_factor f
             ~progress:(float_of_int i /. float_of_int frames))
        +. Fault.delay_s f ~seed:(config.seed + 17) ~index:i
    in
    Obs.Metrics.Histogram.observe obs_frame_latency transfer;
    Obs.Monitor.count Obs.Monitor.frames_series;
    if transfer > dt_s then begin
      Obs.Metrics.Counter.incr obs_deadline_misses;
      Obs.Monitor.count s_deadline_miss;
      Obs.Journal.record ~t_s:start_s
        (Obs.Journal.Deadline_miss
           { frame = i; over_us = journal_clamp ((transfer -. dt_s) *. 1e6) })
    end;
    if i > 0 && registers.(i) <> registers.(i - 1) then begin
      Obs.Monitor.count s_backlight_switches;
      Obs.Journal.record ~t_s:start_s
        (Obs.Journal.Backlight_switch
           {
             frame = i;
             from_register = registers.(i - 1);
             to_register = registers.(i);
           })
    end;
    Obs.Monitor.advance ~now_s:(start_s +. dt_s)
  end;
  m.m_stage <-
    (if i + 1 < frames then Playing (prep, trans, play, i + 1)
     else Finalizing (prep, trans, play))

(* Energy accounting, profiler attribution, the session-end journal
   entry and the report — the tail of the historical playback span. *)
let step_finalize m (prep : prepared_input) (trans : transmitted)
    (play : playing) =
  let config = m.m_config and clip = m.m_clip in
  let frames = m.m_frames and dt_s = m.m_dt_s in
  let annotations_survived = trans.survived in
  let client_track = trans.client_track in
  let degraded_scenes = trans.t_degraded in
  let retransmissions = trans.t_resent in
  let corrupt_records = trans.t_corrupt in
  let { registers; dvfs; radio; received; clean; _ } = play in
  let encoded = prep.encoded in
  let annotation_payload = prep.annotation_payload in
  let report =
    span "session.playback" @@ fun () ->
    let energy registers_arr cpu radio_mj =
      device_energy ~config ~dt_s ~registers:registers_arr ~cpu_energy_mj:cpu
        ~radio_energy_mj:radio_mj
    in
    let optimised =
      energy registers dvfs.Dvfs_playback.cpu_energy_mj
        radio.Radio.radio_energy_mj
    in
    let baseline =
      energy (Array.make frames 255) dvfs.Dvfs_playback.baseline_energy_mj
        radio.Radio.baseline_energy_mj
    in
    if Obs.enabled () then begin
      Obs.Metrics.Gauge.set (obs_energy "cpu") dvfs.Dvfs_playback.cpu_energy_mj;
      Obs.Metrics.Gauge.set (obs_energy "radio") radio.Radio.radio_energy_mj;
      Obs.Metrics.Gauge.set (obs_energy "device_total") optimised;
      Obs.Metrics.Gauge.set (obs_energy "device_baseline") baseline;
      Obs.Monitor.gauge s_power_cpu_mj dvfs.Dvfs_playback.cpu_energy_mj;
      Obs.Monitor.gauge s_power_radio_mj radio.Radio.radio_energy_mj;
      Obs.Monitor.gauge s_power_device_total_mj optimised;
      Obs.Monitor.gauge s_records_corrupt (float_of_int corrupt_records);
      Obs.Monitor.gauge s_degraded_scenes (float_of_int degraded_scenes)
    end;
    if Obs.enabled () && Obs.Profile.installed () then begin
      (* Attribute the delivered session's joules scene by scene to
         the energy profiler: backlight at the register actually
         played (post-patch, post-ramp), the constant display
         electronics over each scene's duration, and the
         session-level CPU / radio accounts. Component sums reproduce
         [optimised] exactly (modulo float associativity), which the
         tests pin to 1e-9 J. Observational only — nothing below
         reads the profiler back. *)
      let d = config.device in
      let constant_mw =
        d.Display.Device.lcd_logic_power_mw +. d.Display.Device.base_power_mw
      in
      let record_scene idx ~first ~count =
        let last = min frames (first + count) - 1 in
        if count > 0 && first < frames then begin
          let t_s = float_of_int first *. dt_s in
          let backlight = ref 0. in
          for i = first to last do
            backlight :=
              !backlight
              +. Power.Model.backlight_power_mw d ~on:true
                   ~register:registers.(i)
                 *. dt_s
          done;
          let scene_s = float_of_int (last - first + 1) *. dt_s in
          Obs.Profile.record ~t_s ~scene:idx ~component:"backlight" !backlight;
          Obs.Profile.record ~t_s ~scene:idx ~component:"display"
            (constant_mw *. scene_s)
        end
      in
      let entries = client_track.Annotation.Track.entries in
      if Array.length entries = 0 then record_scene 0 ~first:0 ~count:frames
      else
        Array.iteri
          (fun idx (e : Annotation.Track.entry) ->
            record_scene idx ~first:e.first_frame ~count:e.frame_count)
          entries;
      Obs.Profile.record ~component:"decode" dvfs.Dvfs_playback.cpu_energy_mj;
      Obs.Profile.record ~component:"radio" radio.Radio.radio_energy_mj
    end;
    let backlight_savings =
      let p r =
        Power.Model.backlight_power_mw config.device ~on:true ~register:r
      in
      let used = Array.fold_left (fun a r -> a +. p r) 0. registers in
      let full = float_of_int frames *. p 255 in
      (full -. used) /. full
    in
    Obs.Journal.record
      ~t_s:(float_of_int frames *. dt_s)
      (Obs.Journal.Session_end
         {
           survived = annotations_survived;
           degraded_scenes;
           retransmissions;
           corrupt_records;
         });
    Obs.Log.info ~scope:"session" (fun () ->
        ( "session end: " ^ clip.Video.Clip.name,
          [
            ("survived", Obs.Json.Bool annotations_survived);
            ("degraded_scenes", Obs.Json.Int degraded_scenes);
            ("retransmissions", Obs.Json.Int retransmissions);
            ("corrupt_records", Obs.Json.Int corrupt_records);
          ] ));
    {
      config;
      frames;
      duration_s = float_of_int frames *. dt_s;
      video_bytes = Codec.Encoder.total_bytes encoded;
      annotation_bytes = String.length annotation_payload;
      annotations_survived;
      video_mean_psnr =
        Transport.mean_psnr ~reference:clean.Codec.Decoder.frames
          received.Transport.pictures;
      concealed_frames = received.Transport.concealed;
      backlight_savings;
      cpu_savings = dvfs.Dvfs_playback.savings;
      radio_savings = radio.Radio.savings;
      device_savings = (baseline -. optimised) /. baseline;
      device_energy_mj = optimised;
      baseline_energy_mj = baseline;
      degraded_scenes;
      retransmissions;
      corrupt_records;
    }
  in
  Obs.Metrics.Counter.incr (obs_sessions `Ok);
  m.m_stage <- Finished (Ok report)

(* Advance the machine by one stage — one simulated frame once playing.
   Every observable effect (journal entries, logs, metrics, monitor
   feeds, profiler attribution) fires in exactly the order the
   run-to-completion implementation produced, so driving a machine to
   [`Done] is indistinguishable from [run]. *)
let step m =
  (match m.m_stage with
  | Starting -> step_start m
  | Prepared prep -> step_transmit m prep
  | Transmitted (prep, trans) -> step_decode m prep trans
  | Playing (prep, trans, play, i) -> step_frame m prep trans play i
  | Finalizing (prep, trans, play) -> step_finalize m prep trans play
  | Finished _ -> ());
  match m.m_stage with Finished _ -> `Done | _ -> `Running

let run config clip =
  span "session.run" ~attrs:[ ("clip", clip.Video.Clip.name) ]
  @@ fun () ->
  let m = create config clip in
  let rec drive () = match step m with `Running -> drive () | `Done -> () in
  drive ();
  match result m with
  | Some r -> r
  | None -> Error "Session.run: machine did not finish"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d frames, %.1f s, video %d B, annotations %d B (%s)@,\
     video PSNR %.1f dB after %d concealments@,\
     savings: backlight %.1f%%, cpu %.1f%%, radio %.1f%% -> device %.1f%%@,\
     energy %.0f mJ vs %.0f mJ baseline@]"
    r.frames r.duration_s r.video_bytes r.annotation_bytes
    (if not r.annotations_survived then "LOST - full backlight fallback"
     else if r.degraded_scenes > 0 then "partially recovered"
     else "recovered")
    r.video_mean_psnr r.concealed_frames (100. *. r.backlight_savings)
    (100. *. r.cpu_savings) (100. *. r.radio_savings) (100. *. r.device_savings)
    r.device_energy_mj r.baseline_energy_mj;
  if r.degraded_scenes > 0 || r.retransmissions > 0 || r.corrupt_records > 0 then
    Format.fprintf ppf
      "@\nresilience: %d degraded scenes, %d retransmissions, %d corrupt records"
      r.degraded_scenes r.retransmissions r.corrupt_records

let pp_report_obs ppf r =
  pp_report ppf r;
  if Obs.enabled () then Format.fprintf ppf "@\n@\n%a" Obs.pp_summary ()
