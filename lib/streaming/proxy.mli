(** The proxy node of Fig 1: transcoding and live annotation.

    "an (optional) proxy node that can perform various operations on
    the stream (transcoding)" — the proxy sits between the server and
    the wireless client, re-encoding the stream for the constrained
    link and annotating it on the fly when the source (e.g. a live
    conference) was never profiled offline. *)

val transcode :
  params:Codec.Stream.params -> Codec.Encoder.encoded ->
  (Codec.Encoder.encoded, string) result
(** [transcode ~params encoded] decodes and re-encodes the stream under
    new codec parameters (typically a coarser quantiser for a slower
    link). Returns [Error] if the input bitstream is corrupt. *)

val transcode_for_link :
  ?utilisation:float ->
  link:Netsim.t ->
  Codec.Encoder.encoded ->
  (Codec.Rate_control.outcome, string) result
(** [transcode_for_link ~link encoded] re-encodes so the stream fits
    the link's bandwidth in real time (see
    {!Codec.Rate_control.for_link}), the rate-adaptation role Fig 1
    assigns the proxy. *)

type live_session = {
  track : Annotation.Track.t;
  annotation_bytes : string;
  added_latency_s : float;
}

val annotate_live :
  ?scene_params:Annotation.Scene_detect.params ->
  ?bulkhead:Resilience.Bulkhead.t ->
  lookahead:int ->
  device:Display.Device.t ->
  quality:Annotation.Quality_level.t ->
  Video.Clip.t ->
  live_session
(** [annotate_live ~lookahead ~device ~quality clip] profiles and
    annotates with a bounded lookahead window (see {!Annotation.Live}),
    reporting the buffering latency the proxy adds.

    [bulkhead] puts the profiling + annotation work inside a
    {!Resilience.Bulkhead} compartment; a shed session gets a
    passthrough track (full backlight everywhere, zero added latency)
    — the proxy stops annotating, it never stops streaming. *)
