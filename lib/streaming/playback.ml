type options = {
  scene_params : Annotation.Scene_detect.params;
  cpu_busy_fraction : float;
  meter : Power.Meter.t;
}

let default_options =
  {
    scene_params = Annotation.Scene_detect.default_params;
    cpu_busy_fraction = 0.6;
    (* lint: allow L010 playback is the canonical metered pipeline; its
       meter publishes every reading to Obs.Profile *)
    meter = Power.Meter.create ();
  }

type report = {
  clip_name : string;
  device_name : string;
  quality : Annotation.Quality_level.t;
  frames : int;
  duration_s : float;
  mean_register : float;
  switch_count : int;
  annotation_bytes : int;
  backlight_energy_mj : float;
  backlight_baseline_mj : float;
  backlight_savings : float;
  total_energy_mj : float;
  total_baseline_mj : float;
  total_savings : float;
}

let frame_state register =
  {
    Power.State.backlight_on = true;
    backlight_register = register;
    cpu = Power.State.Cpu_busy;
    network = Power.State.Net_receiving;
  }

let power_trace ~device ~cpu_busy_fraction ~registers =
  if cpu_busy_fraction < 0. || cpu_busy_fraction > 1. then
    invalid_arg "Playback.power_trace: duty cycle out of [0, 1]";
  Array.map
    (fun register ->
      let busy = Power.Model.device_power_mw device (frame_state register) in
      let idle =
        Power.Model.device_power_mw device
          { (frame_state register) with Power.State.cpu = Power.State.Cpu_idle }
      in
      (cpu_busy_fraction *. busy) +. ((1. -. cpu_busy_fraction) *. idle))
    registers

let backlight_trace ~device ~registers =
  Array.map
    (fun register -> Power.Model.backlight_power_mw device ~on:true ~register)
    registers

let count_switches registers =
  let switches = ref 0 in
  for i = 1 to Array.length registers - 1 do
    if registers.(i) <> registers.(i - 1) then incr switches
  done;
  !switches

let obs_runs =
  Obs.counter ~help:"Playback simulations executed" "streaming_playback_runs_total"
    []

let obs_frames =
  Obs.counter ~help:"Frames played back" "streaming_frames_played_total" []

let obs_switches =
  Obs.counter ~help:"Backlight register changes during playback"
    "streaming_backlight_switches_total" []

let obs_mean_register =
  Obs.gauge ~help:"Mean backlight register of the last playback run"
    "streaming_mean_register" []

let s_backlight_switches = Obs.Monitor.declare_series "backlight_switches"

let run_with_registers ?(options = default_options) ~device ~quality ~clip_name
    ~fps ~annotation_bytes registers =
  Obs.Trace.with_span "playback.run" ~attrs:[ ("clip", clip_name) ]
  @@ fun () ->
  let frames = Array.length registers in
  if frames = 0 then invalid_arg "Playback: empty register track";
  if fps <= 0. then invalid_arg "Playback: fps must be positive";
  let dt_s = 1. /. fps in
  let meter = options.meter in
  let measure ~component trace =
    (* lint: allow L010 measured through the shared options meter, whose
       publish hook feeds Obs.Profile *)
    Power.Meter.measure_trace ~component meter ~dt_s trace
  in
  let full = Array.make frames 255 in
  let total =
    measure ~component:"playback_total"
      (power_trace ~device ~cpu_busy_fraction:options.cpu_busy_fraction ~registers)
  and total_base =
    measure ~component:"playback_baseline"
      (power_trace ~device ~cpu_busy_fraction:options.cpu_busy_fraction ~registers:full)
  and backlight = measure ~component:"backlight" (backlight_trace ~device ~registers)
  and backlight_base =
    measure ~component:"backlight_baseline" (backlight_trace ~device ~registers:full)
  in
  let switch_count = count_switches registers in
  if Obs.enabled () then
    (* Walk the register track on the simulated clock so the health
       monitor sees per-window frame and switch rates. *)
    Array.iteri
      (fun i _ ->
        Obs.Monitor.count Obs.Monitor.frames_series;
        if i > 0 && registers.(i) <> registers.(i - 1) then begin
          Obs.Monitor.count s_backlight_switches;
          Obs.Journal.record
            ~t_s:(float_of_int i *. dt_s)
            (Obs.Journal.Backlight_switch
               {
                 frame = i;
                 from_register = registers.(i - 1);
                 to_register = registers.(i);
               })
        end;
        Obs.Monitor.advance ~now_s:(float_of_int (i + 1) *. dt_s))
      registers;
  Obs.Metrics.Counter.incr obs_runs;
  Obs.Metrics.Counter.incr obs_frames ~by:frames;
  Obs.Metrics.Counter.incr obs_switches ~by:switch_count;
  let mean_register =
    float_of_int (Array.fold_left ( + ) 0 registers) /. float_of_int frames
  in
  Obs.Metrics.Gauge.set obs_mean_register mean_register;
  Obs.Log.info ~scope:"playback" (fun () ->
      ( "playback complete: " ^ clip_name,
        [
          ("clip", Obs.Json.String clip_name);
          ("frames", Obs.Json.Int frames);
          ("backlight_switches", Obs.Json.Int switch_count);
          ("mean_register", Obs.Json.Float mean_register);
        ] ));
  {
    clip_name;
    device_name = device.Display.Device.name;
    quality;
    frames;
    duration_s = float_of_int frames *. dt_s;
    mean_register;
    switch_count;
    annotation_bytes;
    backlight_energy_mj = backlight.Power.Meter.energy_mj;
    backlight_baseline_mj = backlight_base.Power.Meter.energy_mj;
    backlight_savings = Power.Meter.savings_vs ~baseline:backlight_base backlight;
    total_energy_mj = total.Power.Meter.energy_mj;
    total_baseline_mj = total_base.Power.Meter.energy_mj;
    total_savings = Power.Meter.savings_vs ~baseline:total_base total;
  }

let run_profiled ?(options = default_options) ~device ~quality profiled =
  let track =
    Annotation.Annotator.annotate_profiled ~scene_params:options.scene_params ~device
      ~quality profiled
  in
  run_with_registers ~options ~device ~quality
    ~clip_name:profiled.Annotation.Annotator.clip_name
    ~fps:profiled.Annotation.Annotator.fps
    ~annotation_bytes:(Annotation.Encoding.encoded_size track)
    (Annotation.Track.register_track track)

let run ?options ~device ~quality clip =
  run_profiled ?options ~device ~quality (Annotation.Annotator.profile clip)

let instantaneous_backlight_savings ~device track =
  let full = Power.Model.backlight_power_mw device ~on:true ~register:255 in
  Array.map
    (fun register ->
      1. -. (Power.Model.backlight_power_mw device ~on:true ~register /. full))
    (Annotation.Track.register_track track)

let evaluate_quality ~rig ~device ~clip ~track ~sample_every =
  if sample_every <= 0 then invalid_arg "Playback.evaluate_quality: bad stride";
  let verdicts = ref [] in
  let i = ref 0 in
  while !i < clip.Video.Clip.frame_count do
    let original = clip.Video.Clip.render !i in
    let entry = Annotation.Track.lookup track !i in
    let compensated = Annotation.Compensate.frame track !i original in
    let verdict =
      Camera.Quality.evaluate ~rig ~device ~original ~compensated
        ~reduced_register:entry.Annotation.Track.register
    in
    verdicts := (!i, verdict) :: !verdicts;
    i := !i + sample_every
  done;
  List.rev !verdicts

let pp_report ppf r =
  Format.fprintf ppf
    "%-22s %-12s q=%-4s backlight %5.1f%%  total %5.1f%%  reg %5.1f  switches %3d  annot %4dB"
    r.clip_name r.device_name
    (Annotation.Quality_level.label r.quality)
    (100. *. r.backlight_savings) (100. *. r.total_savings) r.mean_register
    r.switch_count r.annotation_bytes
