let slew_limit ~max_dim_step registers =
  if max_dim_step <= 0 then invalid_arg "Ramp.slew_limit: step must be positive";
  let n = Array.length registers in
  if n = 0 then [||]
  else begin
    let out = Array.make n registers.(0) in
    for i = 1 to n - 1 do
      let target = registers.(i) in
      out.(i) <- (if target >= out.(i - 1) then target
                  else max target (out.(i - 1) - max_dim_step))
    done;
    out
  end

let largest_dim_step registers =
  let worst = ref 0 in
  for i = 1 to Array.length registers - 1 do
    let drop = registers.(i - 1) - registers.(i) in
    if drop > !worst then worst := drop
  done;
  !worst

type cost = {
  extra_energy_fraction : float;
  extra_energy_mj : float;
  smoothed_largest_dim_step : int;
  original_largest_dim_step : int;
}

let backlight_power_sum device registers =
  Array.fold_left
    (fun acc register ->
      acc +. Power.Model.backlight_power_mw device ~on:true ~register)
    0. registers

let smoothing_cost ?(fps = 12.) ~device ~max_dim_step registers =
  if not (Float.is_finite fps) || fps <= 0. then
    invalid_arg "Ramp.smoothing_cost: fps must be positive";
  let smoothed = slew_limit ~max_dim_step registers in
  let original_power = backlight_power_sum device registers in
  let smoothed_power = backlight_power_sum device smoothed in
  let extra_power_mw = smoothed_power -. original_power in
  {
    (* A zero-energy original track must not silence the signal: if
       smoothing spent energy on top of nothing, the relative cost is
       infinite, not zero. The absolute account below carries the
       magnitude either way. *)
    extra_energy_fraction =
      (if original_power > 0. then extra_power_mw /. original_power
       else if extra_power_mw > 0. then infinity
       else 0.);
    extra_energy_mj = extra_power_mw /. fps;
    smoothed_largest_dim_step = largest_dim_step smoothed;
    original_largest_dim_step = largest_dim_step registers;
  }
