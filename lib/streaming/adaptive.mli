(** Mid-stream battery-adaptive quality control.

    §4.2 makes the quality level a per-request user choice; the server
    advertises all five levels anyway ("same for all types of PDA
    clients"), so nothing stops a client from *changing* level at a
    scene boundary when its battery runs ahead of plan. The controller
    re-plans at every annotation-track entry: it picks the least lossy
    advertised level whose projected average power over the remaining
    clip fits the remaining energy and time, escalating only when the
    budget demands it. *)

type step = {
  first_frame : int;
  frame_count : int;
  quality : Annotation.Quality_level.t;
  energy_mj : float;  (** device energy actually spent on this span *)
}

type outcome = {
  steps : step list;  (** contiguous, in playback order *)
  completed : bool;  (** battery lasted to the final frame *)
  battery_remaining_mwh : float;  (** non-negative; 0 when it died *)
  frames_played : int;
  mean_quality_loss : float;
      (** frame-weighted mean of the allowed-loss fractions used *)
}

val run :
  ?options:Playback.options ->
  device:Display.Device.t ->
  battery_mwh:float ->
  Annotation.Annotator.profiled ->
  outcome
(** [run ~device ~battery_mwh profiled] plays the clip once, re-planning
    at every scene boundary. Raises [Invalid_argument] on a
    non-positive battery. *)

val pp_outcome : Format.formatter -> outcome -> unit
