(** Frame-aligned transport with loss and concealment.

    The wireless link of Fig 1 drops packets. The transport ships each
    coded frame as its own packet train; when a frame is lost the
    client conceals it by repeating the previous picture, and later
    P-frames predict from the *concealed* picture — drifting until the
    next I-frame refreshes the prediction chain. This quantifies the
    error-resilience side of the streaming substrate (the paper's group
    studied exactly this trade in the PBPAIR line of work) and, for the
    annotation pipeline, shows that backlight annotations shipped
    reliably out-of-band stay valid even when the video is damaged. *)

type packetized = {
  info : Codec.Decoder.stream_info;
  payloads : string array;  (** one byte string per coded frame *)
  frame_types : Codec.Stream.frame_type array;
}

val packetize : Codec.Encoder.encoded -> (packetized, string) result
(** Splits a bitstream at its (byte-aligned) frame boundaries. *)

val bernoulli_loss : rate:float -> seed:int -> frames:int -> bool array
(** [bernoulli_loss ~rate ~seed ~frames] marks each frame lost with
    probability [rate], deterministically from [seed]. Rate in
    [0, 1]. *)

type received = {
  pictures : Image.Raster.t array;
  concealed : int;  (** frames repeated because their data was lost *)
  drifted : int;
      (** received frames decoded against a concealed or drifted
          reference (visually degraded until the next I-frame) *)
}

val decode_with_concealment :
  packetized -> lost:bool array -> (received, string) result
(** Frame-by-frame decode with previous-picture concealment. Fails only
    when nothing displayable exists yet (the very first frame is lost
    before any picture was decoded) or on corrupt payload data. *)

type nack_stats = {
  nack_rounds : int;
  packets_retransmitted : int;  (** total re-sends, all rounds *)
  packets_repaired : int;  (** re-sends that actually arrived *)
  nack_time_s : float;  (** simulated time the loop consumed *)
  budget_exhausted : bool;
      (** the loop stopped because the next round would not fit in the
          deadline budget, not because everything arrived *)
}

val no_nack : nack_stats
(** The all-zero stats of a session that never NACKed. *)

val nack_retransmit :
  ?backoff_base_s:float ->
  ?rtt_s:float ->
  ?policy:Resilience.Retry.policy ->
  ?breaker:Resilience.Breaker.t ->
  fault:Fault.t ->
  link:Netsim.t ->
  budget_s:float ->
  seed:int ->
  packets:string array ->
  string option array ->
  string option array * nack_stats
(** [nack_retransmit ~fault ~link ~budget_s ~seed ~packets present]
    runs a deadline-budgeted NACK/retransmit loop for the annotation
    side channel: every round NACKs the packets still missing from
    [present], waits an exponential backoff ([backoff_base_s], default
    2 ms, doubling per round) plus one [rtt_s] (default 4 ms), and
    receives the re-sent originals from [packets] through the same
    fault model (fresh deterministic sub-stream per round — bursts
    eventually miss a retransmission). A round only runs when its full
    simulated cost fits in [budget_s]; annotations must arrive before
    the frames they govern, so the loop gives up rather than stall
    playback ([budget_exhausted]). [budget_s = 0.] disables
    retransmission entirely. Returns the augmented arrival array (the
    input is not mutated) and the loop's statistics.

    The loop is a {!Resilience.Retry} schedule. [policy] replaces the
    historical defaults wholesale — when given, [backoff_base_s] and
    [budget_s] are ignored in its favour. [breaker] gates each round:
    every repaired or still-missing packet feeds it as an outcome, a
    denial while its cooldown runs is waited out on the simulated
    clock (budget permitting), and a denial with no cooldown left —
    half-open probe quota exhausted — abandons the schedule. *)

val mean_psnr : reference:Image.Raster.t array -> Image.Raster.t array -> float
(** Mean PSNR (dB) against a reference frame sequence; [infinity]-free:
    identical frames are capped at 99 dB so the mean stays finite. *)
