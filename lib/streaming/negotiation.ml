type mapping_site = Server_side | Client_side

type client_hello = {
  device : Display.Device.t;
  requested_quality : Annotation.Quality_level.t;
}

type session = {
  device : Display.Device.t;
  quality : Annotation.Quality_level.t;
  mapping : mapping_site;
}

let offer_qualities = Annotation.Quality_level.standard_grid

let nearest_offered requested =
  let loss = Annotation.Quality_level.allowed_loss requested in
  let by_distance a b =
    Float.compare
      (abs_float (Annotation.Quality_level.allowed_loss a -. loss))
      (abs_float (Annotation.Quality_level.allowed_loss b -. loss))
  in
  match List.sort by_distance offer_qualities with
  | best :: _ -> best
  | [] -> assert false

let negotiate ?(prefer = Server_side) hello =
  match Annotation.Quality_level.allowed_loss hello.requested_quality with
  | exception Invalid_argument msg -> Error msg
  | _ ->
    let quality =
      if List.exists (fun q -> Annotation.Quality_level.compare q hello.requested_quality = 0)
           offer_qualities
      then hello.requested_quality
      else nearest_offered hello.requested_quality
    in
    Ok { device = hello.device; quality; mapping = prefer }

let pp_session ppf s =
  Format.fprintf ppf "<session %s q=%a %s>" s.device.Display.Device.name
    Annotation.Quality_level.pp s.quality
    (match s.mapping with Server_side -> "server-mapped" | Client_side -> "client-mapped")
