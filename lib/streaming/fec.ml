type protected_payload = {
  packets : string array;
  data_packets : int;
  group_size : int;
  packet_size : int;
  payload_length : int;
}

(* XOR [packet] into [acc] (packet may be shorter; missing tail is
   zero). *)
let xor_accumulate acc packet =
  String.iteri
    (fun i c ->
      Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code c)))
    packet

let obs_packets =
  let family kind =
    Obs.counter ~help:"FEC packets built for the annotation side channel"
      "streaming_fec_packets_total"
      [ ("kind", kind) ]
  in
  let data = family "data" and parity = family "parity" in
  fun kind -> if kind = `Data then data else parity

let obs_lost =
  Obs.counter ~help:"FEC packets dropped by the simulated lossy hop"
    "streaming_fec_lost_total" []

let obs_recoveries =
  Obs.counter ~help:"Data packets reconstructed from parity"
    "streaming_fec_recoveries_total" []

let obs_failures =
  Obs.counter ~help:"FEC groups that lost more than parity could repair"
    "streaming_fec_failures_total" []

let protect ?(packet_size = 64) ?(group_size = 4) payload =
  if packet_size <= 0 then invalid_arg "Fec.protect: packet size must be positive";
  if group_size <= 0 then invalid_arg "Fec.protect: group size must be positive";
  let payload_length = String.length payload in
  let data_packets = (payload_length + packet_size - 1) / packet_size in
  let data =
    Array.init data_packets (fun i ->
        let from = i * packet_size in
        String.sub payload from (min packet_size (payload_length - from)))
  in
  let groups = (data_packets + group_size - 1) / group_size in
  let parities =
    Array.init groups (fun g ->
        let acc = Bytes.make packet_size '\000' in
        let first = g * group_size in
        let last = min (data_packets - 1) (first + group_size - 1) in
        for i = first to last do
          xor_accumulate acc data.(i)
        done;
        Bytes.to_string acc)
  in
  Obs.Metrics.Counter.incr (obs_packets `Data) ~by:data_packets;
  Obs.Metrics.Counter.incr (obs_packets `Parity) ~by:groups;
  {
    packets = Array.append data parities;
    data_packets;
    group_size;
    packet_size;
    payload_length;
  }

let overhead_ratio t =
  if t.payload_length = 0 then 0.
  else begin
    let total =
      Array.fold_left (fun acc p -> acc + String.length p) 0 t.packets
    in
    float_of_int (total - t.payload_length) /. float_of_int t.payload_length
  end

let data_length t i =
  let from = i * t.packet_size in
  min t.packet_size (t.payload_length - from)

let recover t ~present =
  if Array.length present <> Array.length t.packets then
    invalid_arg "Fec.recover: packet array length mismatch";
  let groups = (t.data_packets + t.group_size - 1) / t.group_size in
  let recovered = Array.make t.data_packets "" in
  let failure = ref None in
  for g = 0 to groups - 1 do
    let first = g * t.group_size in
    let last = min (t.data_packets - 1) (first + t.group_size - 1) in
    let missing = ref [] in
    for i = first to last do
      match present.(i) with
      | Some packet -> recovered.(i) <- packet
      | None -> missing := i :: !missing
    done;
    match !missing with
    | [] -> ()
    | [ lone ] -> (
      match present.(t.data_packets + g) with
      | None ->
        if !failure = None then
          failure := Some (Printf.sprintf "group %d lost data and parity" g)
      | Some parity ->
        let acc = Bytes.of_string parity in
        for i = first to last do
          if i <> lone then xor_accumulate acc recovered.(i)
        done;
        Obs.Metrics.Counter.incr obs_recoveries;
        recovered.(lone) <- Bytes.sub_string acc 0 (data_length t lone))
    | _ :: _ :: _ ->
      if !failure = None then
        failure := Some (Printf.sprintf "group %d lost %d packets" g (List.length !missing))
  done;
  match !failure with
  | Some msg ->
    Obs.Metrics.Counter.incr obs_failures;
    Error msg
  | None -> Ok (String.concat "" (Array.to_list recovered))

type recovery = {
  payload : string;
  byte_ok : bool array;
  failed_groups : int list;
  repaired_packets : int;
}

let recover_detail t ~present =
  if Array.length present <> Array.length t.packets then
    invalid_arg "Fec.recover_detail: packet array length mismatch";
  let groups = (t.data_packets + t.group_size - 1) / t.group_size in
  let recovered = Array.make t.data_packets None in
  let failed = ref [] in
  let repaired = ref 0 in
  for g = groups - 1 downto 0 do
    let first = g * t.group_size in
    let last = min (t.data_packets - 1) (first + t.group_size - 1) in
    let missing = ref [] in
    for i = first to last do
      match present.(i) with
      | Some packet -> recovered.(i) <- Some packet
      | None -> missing := i :: !missing
    done;
    match !missing with
    | [] -> ()
    | [ lone ] -> (
      match present.(t.data_packets + g) with
      | None ->
        Obs.Metrics.Counter.incr obs_failures;
        failed := g :: !failed
      | Some parity ->
        let acc = Bytes.of_string parity in
        for i = first to last do
          if i <> lone then
            match recovered.(i) with
            | Some p -> xor_accumulate acc p
            | None -> ()
        done;
        Obs.Metrics.Counter.incr obs_recoveries;
        incr repaired;
        recovered.(lone) <- Some (Bytes.sub_string acc 0 (data_length t lone)))
    | _ :: _ :: _ ->
      Obs.Metrics.Counter.incr obs_failures;
      failed := g :: !failed
  done;
  (* Zero-fill unrecovered spans so the payload keeps its exact length
     and surviving records stay at their true offsets; [byte_ok] tells
     the decoder which spans to distrust. *)
  let byte_ok = Array.make t.payload_length true in
  let buf = Buffer.create t.payload_length in
  Array.iteri
    (fun i packet ->
      let len = data_length t i in
      match packet with
      | Some p -> Buffer.add_string buf p
      | None ->
        Buffer.add_string buf (String.make len '\000');
        let from = i * t.packet_size in
        Array.fill byte_ok from len false)
    recovered;
  {
    payload = Buffer.contents buf;
    byte_ok;
    failed_groups = !failed;
    repaired_packets = !repaired;
  }

let transmit t ~rate ~seed =
  if rate < 0. || rate > 1. then invalid_arg "Fec.transmit: bad rate";
  let rng = Image.Prng.create ~seed in
  Array.map
    (fun packet ->
      if Image.Prng.float rng 1. < rate then begin
        Obs.Metrics.Counter.incr obs_lost;
        None
      end
      else Some packet)
    t.packets
