type loss_model =
  | No_loss
  | Bernoulli of float
  | Gilbert of {
      p_enter_bad : float;
      p_exit_bad : float;
      loss_good : float;
      loss_bad : float;
    }

type collapse = { at_fraction : float; factor : float }

type t = {
  loss : loss_model;
  corrupt_rate : float;
  reorder_rate : float;
  jitter_s : float;
  collapse : collapse option;
}

let none =
  { loss = No_loss; corrupt_rate = 0.; reorder_rate = 0.; jitter_s = 0.; collapse = None }

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Fault: %s %g out of [0, 1]" what p)

let bernoulli ~rate =
  check_prob "bernoulli rate" rate;
  { none with loss = Bernoulli rate }

let gilbert ?(loss_good = 0.) ?(loss_bad = 1.) ~mean_loss ~burst_length () =
  check_prob "loss_good" loss_good;
  check_prob "loss_bad" loss_bad;
  if burst_length < 1. then
    invalid_arg "Fault.gilbert: burst length must be >= 1 packet";
  if not (mean_loss > loss_good && mean_loss < loss_bad) then
    invalid_arg
      (Printf.sprintf
         "Fault.gilbert: mean loss %g must lie strictly between loss_good %g \
          and loss_bad %g" mean_loss loss_good loss_bad);
  (* Stationary bad-state occupancy pi solves
     mean_loss = pi * loss_bad + (1 - pi) * loss_good; the mean bad
     sojourn is 1 / p_exit_bad packets. *)
  let pi = (mean_loss -. loss_good) /. (loss_bad -. loss_good) in
  let p_exit_bad = 1. /. burst_length in
  let p_enter_bad = p_exit_bad *. pi /. (1. -. pi) in
  if p_enter_bad > 1. then
    invalid_arg "Fault.gilbert: mean loss too high for this burst length";
  { none with loss = Gilbert { p_enter_bad; p_exit_bad; loss_good; loss_bad } }

(* Distinct deterministic streams per concern, so adding corruption to
   a profile never changes which packets the loss model drops. *)
let salt_loss = 0x1f12f
let salt_reorder = 0x9e377
let salt_corrupt = 0x85eb1
let salt_jitter = 0xc2b2a

let rng ~seed ~salt = Image.Prng.create ~seed:((seed * 0x2545f49) lxor salt)

let obs_lost =
  let family cause =
    Obs.counter ~help:"Deliveries killed by the fault injector"
      "fault_deliveries_lost_total"
      [ ("cause", cause) ]
  in
  let loss = family "loss" and reorder = family "reorder" in
  fun cause -> if cause = `Loss then loss else reorder

let obs_corrupted_bytes =
  Obs.counter ~help:"Delivered bytes flipped by the fault injector"
    "fault_bytes_corrupted_total" []

let loss_mask t ~seed ~n =
  if n < 0 then invalid_arg "Fault.loss_mask: negative length";
  match t.loss with
  | No_loss -> Array.make n false
  | Bernoulli rate ->
    let r = rng ~seed ~salt:salt_loss in
    Array.init n (fun _ -> Image.Prng.float r 1. < rate)
  | Gilbert g ->
    let r = rng ~seed ~salt:salt_loss in
    let pi =
      let d = g.p_enter_bad +. g.p_exit_bad in
      if d <= 0. then 0. else g.p_enter_bad /. d
    in
    let bad = ref (Image.Prng.float r 1. < pi) in
    Array.init n (fun _ ->
        let p = if !bad then g.loss_bad else g.loss_good in
        let lost = Image.Prng.float r 1. < p in
        let flip =
          Image.Prng.float r 1. < (if !bad then g.p_exit_bad else g.p_enter_bad)
        in
        if flip then bad := not !bad;
        lost)

let corrupt_packet r rate packet =
  let out = ref None in
  String.iteri
    (fun i c ->
      if Image.Prng.float r 1. < rate then begin
        let bytes =
          match !out with
          | Some b -> b
          | None ->
            let b = Bytes.of_string packet in
            out := Some b;
            b
        in
        (* XOR with a non-zero byte: a "corruption" always changes the
           byte, so the injected rate is the observed flip rate. *)
        Bytes.set bytes i
          (Char.chr (Char.code c lxor (1 + Image.Prng.int r 255)));
        Obs.Metrics.Counter.incr obs_corrupted_bytes
      end)
    packet;
  match !out with None -> packet | Some b -> Bytes.to_string b

let apply ?(t_s = 0.) t ~seed packets =
  let n = Array.length packets in
  let lost = loss_mask t ~seed ~n in
  let reorder_rng = rng ~seed ~salt:salt_reorder in
  let corrupt_rng = rng ~seed ~salt:salt_corrupt in
  let out =
    Array.init n (fun i ->
        if lost.(i) then begin
          Obs.Metrics.Counter.incr (obs_lost `Loss);
          None
        end
        else if
          t.reorder_rate > 0. && Image.Prng.float reorder_rng 1. < t.reorder_rate
        then begin
          (* Displaced past its decode deadline: gone as far as playback
             is concerned, though a retransmission can still repair it. *)
          Obs.Metrics.Counter.incr (obs_lost `Reorder);
          None
        end
        else if t.corrupt_rate > 0. then
          Some (corrupt_packet corrupt_rng t.corrupt_rate packets.(i))
        else Some packets.(i))
  in
  if Obs.enabled () && Obs.Journal.installed () then begin
    let delivered =
      Array.fold_left (fun acc p -> if p = None then acc else acc + 1) 0 out
    in
    Obs.Journal.record ~t_s (Obs.Journal.Channel { packets = n; delivered })
  end;
  out

let delay_s t ~seed ~index =
  if t.jitter_s <= 0. then 0.
  else
    let r = rng ~seed:(seed + (index * 0x9e3779b1)) ~salt:salt_jitter in
    Image.Prng.float r t.jitter_s

let bandwidth_factor t ~progress =
  match t.collapse with
  | None -> 1.
  | Some c -> if progress >= c.at_fraction then c.factor else 1.

(* --- profile format ---------------------------------------------------- *)

exception Bad_profile of string

let parse text =
  let model = ref `None in
  let rate = ref None and mean_loss = ref None and burst_length = ref None in
  let loss_good = ref 0. and loss_bad = ref 1. in
  let corrupt = ref 0. and reorder = ref 0. and jitter_ms = ref 0. in
  let collapse_at = ref None and collapse_factor = ref None in
  let float_of what v =
    match float_of_string_opt (String.trim v) with
    | Some f -> f
    | None -> raise (Bad_profile (Printf.sprintf "%s: bad number %S" what v))
  in
  let handle_line n line =
    let body =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    if String.trim body <> "" then begin
      match String.index_opt body '=' with
      | None -> raise (Bad_profile (Printf.sprintf "line %d: expected key = value" n))
      | Some i ->
        let key = String.trim (String.sub body 0 i) in
        let value =
          String.trim (String.sub body (i + 1) (String.length body - i - 1))
        in
        (match key with
        | "model" -> (
          match String.lowercase_ascii value with
          | "none" -> model := `None
          | "bernoulli" -> model := `Bernoulli
          | "gilbert" -> model := `Gilbert
          | other ->
            raise
              (Bad_profile
                 (Printf.sprintf
                    "line %d: unknown model %S (none, bernoulli, gilbert)" n other)))
        | "rate" -> rate := Some (float_of key value)
        | "mean_loss" -> mean_loss := Some (float_of key value)
        | "burst_length" | "burst" -> burst_length := Some (float_of key value)
        | "loss_good" -> loss_good := float_of key value
        | "loss_bad" -> loss_bad := float_of key value
        | "corrupt" -> corrupt := float_of key value
        | "reorder" -> reorder := float_of key value
        | "jitter_ms" -> jitter_ms := float_of key value
        | "collapse_at" -> collapse_at := Some (float_of key value)
        | "collapse_factor" -> collapse_factor := Some (float_of key value)
        | other ->
          raise (Bad_profile (Printf.sprintf "line %d: unknown key %S" n other)))
    end
  in
  try
    List.iteri (fun i line -> handle_line (i + 1) line) (String.split_on_char '\n' text);
    let base =
      match !model with
      | `None ->
        if !rate <> None || !mean_loss <> None then
          raise (Bad_profile "loss parameters given but model = none (or missing)");
        none
      | `Bernoulli -> (
        match !rate with
        | None -> raise (Bad_profile "model = bernoulli needs rate")
        | Some r -> bernoulli ~rate:r)
      | `Gilbert -> (
        match (!mean_loss, !burst_length) with
        | Some m, Some b ->
          gilbert ~loss_good:!loss_good ~loss_bad:!loss_bad ~mean_loss:m
            ~burst_length:b ()
        | _ -> raise (Bad_profile "model = gilbert needs mean_loss and burst_length"))
    in
    check_prob "corrupt" !corrupt;
    check_prob "reorder" !reorder;
    if !jitter_ms < 0. then raise (Bad_profile "jitter_ms must be >= 0");
    let collapse =
      match (!collapse_at, !collapse_factor) with
      | None, None -> None
      | Some at, Some factor ->
        if not (at >= 0. && at <= 1.) then
          raise (Bad_profile "collapse_at must be in [0, 1]");
        if not (factor > 0. && factor <= 1.) then
          raise (Bad_profile "collapse_factor must be in (0, 1]");
        Some { at_fraction = at; factor }
      | _ -> raise (Bad_profile "collapse_at and collapse_factor go together")
    in
    Ok
      {
        base with
        corrupt_rate = !corrupt;
        reorder_rate = !reorder;
        jitter_s = !jitter_ms /. 1000.;
        collapse;
      }
  with
  | Bad_profile msg -> Error msg
  | Invalid_argument msg -> Error msg

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let pp ppf t =
  let open Format in
  (match t.loss with
  | No_loss -> pp_print_string ppf "no loss"
  | Bernoulli r -> fprintf ppf "bernoulli(%.1f%%)" (100. *. r)
  | Gilbert g ->
    let pi =
      let d = g.p_enter_bad +. g.p_exit_bad in
      if d <= 0. then 0. else g.p_enter_bad /. d
    in
    let mean = (pi *. g.loss_bad) +. ((1. -. pi) *. g.loss_good) in
    fprintf ppf "gilbert(mean %.1f%%, burst %.1f)" (100. *. mean) (1. /. g.p_exit_bad));
  if t.corrupt_rate > 0. then fprintf ppf " corrupt %g" t.corrupt_rate;
  if t.reorder_rate > 0. then fprintf ppf " reorder %g" t.reorder_rate;
  if t.jitter_s > 0. then fprintf ppf " jitter %gms" (1000. *. t.jitter_s);
  match t.collapse with
  | None -> ()
  | Some c ->
    fprintf ppf " collapse %.0f%%bw@@%.0f%%" (100. *. c.factor) (100. *. c.at_fraction)
