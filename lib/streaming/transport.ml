type packetized = {
  info : Codec.Decoder.stream_info;
  payloads : string array;
  frame_types : Codec.Stream.frame_type array;
}

let packetize (encoded : Codec.Encoder.encoded) =
  Result.map
    (fun info ->
      let data = encoded.Codec.Encoder.data in
      let offset = ref info.Codec.Decoder.header_bytes in
      let payloads =
        Array.map
          (fun bits ->
            let bytes = (bits + 7) / 8 in
            let payload = String.sub data !offset bytes in
            offset := !offset + bytes;
            payload)
          encoded.Codec.Encoder.frame_sizes_bits
      in
      { info; payloads; frame_types = encoded.Codec.Encoder.frame_types })
    (Codec.Decoder.parse_header encoded.Codec.Encoder.data)

let obs_frames_lost =
  Obs.counter ~help:"Video frames dropped by the simulated lossy hop"
    "streaming_frames_lost_total" []

let obs_concealed =
  Obs.counter ~help:"Lost frames replaced by the concealment rule"
    "streaming_frames_concealed_total" []

let obs_drifted =
  Obs.counter ~help:"P frames decoded against a damaged prediction chain"
    "streaming_frames_drifted_total" []

let bernoulli_loss ~rate ~seed ~frames =
  if rate < 0. || rate > 1. then invalid_arg "Transport.bernoulli_loss: bad rate";
  let rng = Image.Prng.create ~seed in
  Array.init frames (fun _ -> Image.Prng.float rng 1. < rate)

type received = {
  pictures : Image.Raster.t array;
  concealed : int;
  drifted : int;
}

let decode_with_concealment t ~lost =
  Obs.Trace.with_span "transport.decode"
    ~attrs:[ ("frames", string_of_int (Array.length t.payloads)) ]
  @@ fun () ->
  let n = Array.length t.payloads in
  if Array.length lost <> n then
    invalid_arg "Transport.decode_with_concealment: loss mask length mismatch";
  if Obs.enabled () then
    Obs.Metrics.Counter.incr obs_frames_lost
      ~by:(Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 lost);
  let pictures = Array.make n (Image.Raster.create ~width:1 ~height:1) in
  let reference = ref None in
  let concealed = ref 0 and drifted = ref 0 in
  (* Tracks whether the prediction chain is currently damaged. *)
  let chain_dirty = ref false in
  let result = ref (Ok ()) in
  (try
     for i = 0 to n - 1 do
       if lost.(i) then begin
         match !reference with
         | None -> failwith "first frame lost: nothing to conceal with"
         | Some prev ->
           incr concealed;
           Obs.Metrics.Counter.incr obs_concealed;
           chain_dirty := true;
           pictures.(i) <-
             Codec.Decoder.raster_of_reference
               ~width:t.info.Codec.Decoder.info_width
               ~height:t.info.Codec.Decoder.info_height prev
       end
       else begin
         match
           Codec.Decoder.decode_frame ~info:t.info ~reference:!reference
             t.payloads.(i)
         with
         | Error msg -> failwith msg
         | Ok (picture, new_reference) ->
           (* An I-frame refreshes the chain; a P-frame inherits any
              damage. *)
           (match t.frame_types.(i) with
           | Codec.Stream.I_frame -> chain_dirty := false
           | Codec.Stream.P_frame ->
             if !chain_dirty then begin
               incr drifted;
               Obs.Metrics.Counter.incr obs_drifted
             end);
           pictures.(i) <- picture;
           reference := Some new_reference
       end
     done
   with Failure msg -> result := Error msg);
  Result.map
    (fun () -> { pictures; concealed = !concealed; drifted = !drifted })
    !result

type nack_stats = {
  nack_rounds : int;
  packets_retransmitted : int;
  packets_repaired : int;
  nack_time_s : float;
  budget_exhausted : bool;
}

let no_nack =
  {
    nack_rounds = 0;
    packets_retransmitted = 0;
    packets_repaired = 0;
    nack_time_s = 0.;
    budget_exhausted = false;
  }

let obs_retransmissions =
  Obs.counter ~help:"Annotation packets re-sent after a NACK"
    "annot_retransmissions_total" []

let obs_nack_rounds =
  Obs.counter ~help:"NACK/retransmit rounds run for the annotation side channel"
    "annot_nack_rounds_total" []

let max_nack_rounds = 16

let nack_retransmit ?(backoff_base_s = 0.002) ?(rtt_s = 0.004) ~fault ~link
    ~budget_s ~seed ~packets present =
  if Array.length present <> Array.length packets then
    invalid_arg "Transport.nack_retransmit: packet array length mismatch";
  let present = Array.copy present in
  let spent = ref 0. in
  let rounds = ref 0 in
  let retransmitted = ref 0 in
  let repaired = ref 0 in
  let exhausted = ref false in
  let missing () =
    let acc = ref [] in
    Array.iteri (fun i p -> if p = None then acc := i :: !acc) present;
    List.rev !acc
  in
  let finished = ref false in
  while not !finished do
    match missing () with
    | [] -> finished := true
    | gaps when !rounds >= max_nack_rounds -> ignore gaps; finished := true
    | gaps ->
      (* One round: NACK upstream, wait out the backoff, receive the
         burst of re-sent packets. Costed on the simulated clock before
         it is spent, so the loop never blows its deadline budget. *)
      let backoff = backoff_base_s *. Float.pow 2. (float_of_int !rounds) in
      let round_seed = seed + ((!rounds + 1) * 7919) in
      let transfer =
        List.fold_left
          (fun acc i ->
            acc
            +. Netsim.transfer_time_s link (String.length packets.(i))
            +. Fault.delay_s fault ~seed:round_seed ~index:i)
          0. gaps
      in
      let cost = rtt_s +. backoff +. transfer in
      if !spent +. cost > budget_s then begin
        exhausted := true;
        finished := true
      end
      else begin
        spent := !spent +. cost;
        incr rounds;
        Obs.Metrics.Counter.incr obs_nack_rounds;
        let resent = Array.of_list (List.map (fun i -> packets.(i)) gaps) in
        retransmitted := !retransmitted + Array.length resent;
        Obs.Metrics.Counter.incr obs_retransmissions ~by:(Array.length resent);
        (* Retransmissions ride the same faulty channel with a fresh
           deterministic sub-stream. *)
        let delivered = Fault.apply ~t_s:!spent fault ~seed:round_seed resent in
        let repaired_before = !repaired in
        List.iteri
          (fun k i ->
            match delivered.(k) with
            | Some p ->
              present.(i) <- Some p;
              incr repaired
            | None -> ())
          gaps;
        Obs.Journal.record ~t_s:!spent
          (Obs.Journal.Nack_round
             {
               round = !rounds;
               missing = List.length gaps;
               repaired = !repaired - repaired_before;
             })
      end
  done;
  ( present,
    {
      nack_rounds = !rounds;
      packets_retransmitted = !retransmitted;
      packets_repaired = !repaired;
      nack_time_s = !spent;
      budget_exhausted = !exhausted;
    } )

let mean_psnr ~reference pictures =
  if Array.length reference <> Array.length pictures || Array.length reference = 0
  then invalid_arg "Transport.mean_psnr: sequence mismatch";
  let total = ref 0. in
  Array.iteri
    (fun i picture ->
      let psnr = Image.Metrics.psnr reference.(i) picture in
      total := !total +. Float.min 99. psnr)
    pictures;
  !total /. float_of_int (Array.length reference)
