type packetized = {
  info : Codec.Decoder.stream_info;
  payloads : string array;
  frame_types : Codec.Stream.frame_type array;
}

let packetize (encoded : Codec.Encoder.encoded) =
  Result.map
    (fun info ->
      let data = encoded.Codec.Encoder.data in
      let offset = ref info.Codec.Decoder.header_bytes in
      let payloads =
        Array.map
          (fun bits ->
            let bytes = (bits + 7) / 8 in
            let payload = String.sub data !offset bytes in
            offset := !offset + bytes;
            payload)
          encoded.Codec.Encoder.frame_sizes_bits
      in
      { info; payloads; frame_types = encoded.Codec.Encoder.frame_types })
    (Codec.Decoder.parse_header encoded.Codec.Encoder.data)

let obs_frames_lost =
  Obs.counter ~help:"Video frames dropped by the simulated lossy hop"
    "streaming_frames_lost_total" []

let obs_concealed =
  Obs.counter ~help:"Lost frames replaced by the concealment rule"
    "streaming_frames_concealed_total" []

let obs_drifted =
  Obs.counter ~help:"P frames decoded against a damaged prediction chain"
    "streaming_frames_drifted_total" []

let bernoulli_loss ~rate ~seed ~frames =
  if rate < 0. || rate > 1. then invalid_arg "Transport.bernoulli_loss: bad rate";
  let rng = Image.Prng.create ~seed in
  Array.init frames (fun _ -> Image.Prng.float rng 1. < rate)

type received = {
  pictures : Image.Raster.t array;
  concealed : int;
  drifted : int;
}

let decode_with_concealment t ~lost =
  Obs.Trace.with_span "transport.decode"
    ~attrs:[ ("frames", string_of_int (Array.length t.payloads)) ]
  @@ fun () ->
  let n = Array.length t.payloads in
  if Array.length lost <> n then
    invalid_arg "Transport.decode_with_concealment: loss mask length mismatch";
  if Obs.enabled () then
    Obs.Metrics.Counter.incr obs_frames_lost
      ~by:(Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 lost);
  let pictures = Array.make n (Image.Raster.create ~width:1 ~height:1) in
  let reference = ref None in
  let concealed = ref 0 and drifted = ref 0 in
  (* Tracks whether the prediction chain is currently damaged. *)
  let chain_dirty = ref false in
  let result = ref (Ok ()) in
  (try
     for i = 0 to n - 1 do
       if lost.(i) then begin
         match !reference with
         | None -> failwith "first frame lost: nothing to conceal with"
         | Some prev ->
           incr concealed;
           Obs.Metrics.Counter.incr obs_concealed;
           chain_dirty := true;
           pictures.(i) <-
             Codec.Decoder.raster_of_reference
               ~width:t.info.Codec.Decoder.info_width
               ~height:t.info.Codec.Decoder.info_height prev
       end
       else begin
         match
           Codec.Decoder.decode_frame ~info:t.info ~reference:!reference
             t.payloads.(i)
         with
         | Error msg -> failwith msg
         | Ok (picture, new_reference) ->
           (* An I-frame refreshes the chain; a P-frame inherits any
              damage. *)
           (match t.frame_types.(i) with
           | Codec.Stream.I_frame -> chain_dirty := false
           | Codec.Stream.P_frame ->
             if !chain_dirty then begin
               incr drifted;
               Obs.Metrics.Counter.incr obs_drifted
             end);
           pictures.(i) <- picture;
           reference := Some new_reference
       end
     done
   with Failure msg -> result := Error msg);
  Result.map
    (fun () -> { pictures; concealed = !concealed; drifted = !drifted })
    !result

let mean_psnr ~reference pictures =
  if Array.length reference <> Array.length pictures || Array.length reference = 0
  then invalid_arg "Transport.mean_psnr: sequence mismatch";
  let total = ref 0. in
  Array.iteri
    (fun i picture ->
      let psnr = Image.Metrics.psnr reference.(i) picture in
      total := !total +. Float.min 99. psnr)
    pictures;
  !total /. float_of_int (Array.length reference)
