type packetized = {
  info : Codec.Decoder.stream_info;
  payloads : string array;
  frame_types : Codec.Stream.frame_type array;
}

let packetize (encoded : Codec.Encoder.encoded) =
  Result.map
    (fun info ->
      let data = encoded.Codec.Encoder.data in
      let offset = ref info.Codec.Decoder.header_bytes in
      let payloads =
        Array.map
          (fun bits ->
            let bytes = (bits + 7) / 8 in
            let payload = String.sub data !offset bytes in
            offset := !offset + bytes;
            payload)
          encoded.Codec.Encoder.frame_sizes_bits
      in
      { info; payloads; frame_types = encoded.Codec.Encoder.frame_types })
    (Codec.Decoder.parse_header encoded.Codec.Encoder.data)

let obs_frames_lost =
  Obs.counter ~help:"Video frames dropped by the simulated lossy hop"
    "streaming_frames_lost_total" []

let obs_concealed =
  Obs.counter ~help:"Lost frames replaced by the concealment rule"
    "streaming_frames_concealed_total" []

let obs_drifted =
  Obs.counter ~help:"P frames decoded against a damaged prediction chain"
    "streaming_frames_drifted_total" []

let bernoulli_loss ~rate ~seed ~frames =
  if rate < 0. || rate > 1. then invalid_arg "Transport.bernoulli_loss: bad rate";
  let rng = Image.Prng.create ~seed in
  Array.init frames (fun _ -> Image.Prng.float rng 1. < rate)

type received = {
  pictures : Image.Raster.t array;
  concealed : int;
  drifted : int;
}

let decode_with_concealment t ~lost =
  Obs.Trace.with_span "transport.decode"
    ~attrs:[ ("frames", string_of_int (Array.length t.payloads)) ]
  @@ fun () ->
  let n = Array.length t.payloads in
  if Array.length lost <> n then
    invalid_arg "Transport.decode_with_concealment: loss mask length mismatch";
  if Obs.enabled () then
    Obs.Metrics.Counter.incr obs_frames_lost
      ~by:(Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 lost);
  let pictures = Array.make n (Image.Raster.create ~width:1 ~height:1) in
  let reference = ref None in
  let concealed = ref 0 and drifted = ref 0 in
  (* Tracks whether the prediction chain is currently damaged. *)
  let chain_dirty = ref false in
  let result = ref (Ok ()) in
  (try
     for i = 0 to n - 1 do
       if lost.(i) then begin
         match !reference with
         | None -> failwith "first frame lost: nothing to conceal with"
         | Some prev ->
           incr concealed;
           Obs.Metrics.Counter.incr obs_concealed;
           chain_dirty := true;
           pictures.(i) <-
             Codec.Decoder.raster_of_reference
               ~width:t.info.Codec.Decoder.info_width
               ~height:t.info.Codec.Decoder.info_height prev
       end
       else begin
         match
           Codec.Decoder.decode_frame ~info:t.info ~reference:!reference
             t.payloads.(i)
         with
         | Error msg -> failwith msg
         | Ok (picture, new_reference) ->
           (* An I-frame refreshes the chain; a P-frame inherits any
              damage. *)
           (match t.frame_types.(i) with
           | Codec.Stream.I_frame -> chain_dirty := false
           | Codec.Stream.P_frame ->
             if !chain_dirty then begin
               incr drifted;
               Obs.Metrics.Counter.incr obs_drifted
             end);
           pictures.(i) <- picture;
           reference := Some new_reference
       end
     done
   with Failure msg -> result := Error msg);
  Result.map
    (fun () -> { pictures; concealed = !concealed; drifted = !drifted })
    !result

type nack_stats = {
  nack_rounds : int;
  packets_retransmitted : int;
  packets_repaired : int;
  nack_time_s : float;
  budget_exhausted : bool;
}

let no_nack =
  {
    nack_rounds = 0;
    packets_retransmitted = 0;
    packets_repaired = 0;
    nack_time_s = 0.;
    budget_exhausted = false;
  }

let obs_retransmissions =
  Obs.counter ~help:"Annotation packets re-sent after a NACK"
    "annot_retransmissions_total" []

let obs_nack_rounds =
  Obs.counter ~help:"NACK/retransmit rounds run for the annotation side channel"
    "annot_nack_rounds_total" []

(* The NACK loop is a Resilience.Retry schedule: each attempt NACKs the
   packets still missing, waits out the backoff, and receives the burst
   of re-sent packets through the same fault model on a fresh
   deterministic sub-stream. The default policy reproduces the
   historical hand-rolled loop bit for bit (asserted in the tests); a
   resilience profile swaps in its own policy, and a circuit breaker
   can gate rounds — waiting out its cooldown on the simulated clock
   when the budget still allows. *)
let nack_retransmit ?(backoff_base_s = 0.002) ?(rtt_s = 0.004) ?policy ?breaker
    ~fault ~link ~budget_s ~seed ~packets present =
  if Array.length present <> Array.length packets then
    invalid_arg "Transport.nack_retransmit: packet array length mismatch";
  let policy =
    match policy with
    | Some p -> p
    | None ->
      {
        Resilience.Retry.default with
        Resilience.Retry.base_backoff_s = backoff_base_s;
        budget_s;
      }
  in
  let present = Array.copy present in
  let retransmitted = ref 0 in
  let repaired = ref 0 in
  let missing () =
    let acc = ref [] in
    Array.iteri (fun i p -> if p = None then acc := i :: !acc) present;
    List.rev !acc
  in
  let admit _a ~now_s () =
    match breaker with
    | None -> Resilience.Retry.Admit
    | Some b ->
      if Resilience.Breaker.allow b ~now_s then Resilience.Retry.Admit
      else (
        match Resilience.Breaker.cooldown_remaining b ~now_s with
        | Some w when w > 0. -> Resilience.Retry.Wait w
        | _ -> Resilience.Retry.Stop)
  in
  let cost (a : Resilience.Retry.attempt) () =
    let transfer =
      List.fold_left
        (fun acc i ->
          acc
          +. Netsim.transfer_time_s link (String.length packets.(i))
          +. Fault.delay_s fault ~seed:a.Resilience.Retry.seed ~index:i)
        0. (missing ())
    in
    rtt_s +. a.Resilience.Retry.backoff_s +. transfer
  in
  let step (a : Resilience.Retry.attempt) ~now_s () =
    let gaps = missing () in
    Obs.Metrics.Counter.incr obs_nack_rounds;
    let resent = Array.of_list (List.map (fun i -> packets.(i)) gaps) in
    retransmitted := !retransmitted + Array.length resent;
    Obs.Metrics.Counter.incr obs_retransmissions ~by:(Array.length resent);
    let delivered =
      Fault.apply ~t_s:now_s fault ~seed:a.Resilience.Retry.seed resent
    in
    let repaired_before = !repaired in
    List.iteri
      (fun k i ->
        match delivered.(k) with
        | Some p ->
          present.(i) <- Some p;
          incr repaired;
          Option.iter
            (fun b -> Resilience.Breaker.record b ~now_s ~ok:true)
            breaker
        | None ->
          Option.iter
            (fun b -> Resilience.Breaker.record b ~now_s ~ok:false)
            breaker)
      gaps;
    Obs.Journal.record ~t_s:now_s
      (Obs.Journal.Nack_round
         {
           round = a.Resilience.Retry.round + 1;
           missing = List.length gaps;
           repaired = !repaired - repaired_before;
         })
  in
  let (), stats =
    Resilience.Retry.run ~admit policy ~seed ~init:()
      ~pending:(fun () -> missing () <> [])
      ~cost
      ~step:(fun a ~now_s () -> step a ~now_s ())
  in
  ( present,
    {
      nack_rounds = stats.Resilience.Retry.attempts;
      packets_retransmitted = !retransmitted;
      packets_repaired = !repaired;
      nack_time_s = stats.Resilience.Retry.time_s;
      budget_exhausted = stats.Resilience.Retry.budget_exhausted;
    } )

let mean_psnr ~reference pictures =
  if Array.length reference <> Array.length pictures || Array.length reference = 0
  then invalid_arg "Transport.mean_psnr: sequence mismatch";
  let total = ref 0. in
  Array.iteri
    (fun i picture ->
      let psnr = Image.Metrics.psnr reference.(i) picture in
      total := !total +. Float.min 99. psnr)
    pictures;
  !total /. float_of_int (Array.length reference)
