(** A fixed-size domain pool with deterministic parallel iteration.

    The server side of the paper is where a production deployment
    spends its CPU: annotation is computed offline "at either the
    server or proxy node" (§4). This pool lets those offline passes
    scale with cores while keeping their output bit-identical to a
    sequential run, which is the property every caller's tests assert.

    Determinism contract:

    - {!parallel_for} applies the body to every index exactly once;
      bodies that write to distinct slots of a pre-allocated result
      produce the same memory image regardless of domain count.
    - {!map_reduce} reduces strictly left-to-right: indices are mapped
      in chunks, each chunk folds in index order, and chunk results
      fold in chunk order. The chunk partition depends only on the
      index range (and an explicit [chunk_size]), never on the domain
      count, so even a non-associative [reduce] gives one answer for
      every pool size.
    - When bodies raise, every chunk still runs to completion (or
      fails), and the exception of the {e lowest} failing index's
      chunk is re-raised in the caller — the same exception a
      sequential left-to-right run would have surfaced first.

    The pool is the only module in the tree allowed to call
    [Domain.spawn] (lint rule L009): all parallelism flows through
    here, so the argument above covers every parallel path. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains; the
    caller of each parallel operation is the remaining member, so
    [domains = 1] is a pool that runs everything sequentially in the
    caller (and spawns nothing). Defaults to {!recommended}. Raises
    [Invalid_argument] when [domains < 1]. *)

val domains : t -> int
(** Total parallelism, workers plus the calling domain. *)

val recommended : unit -> int
(** The runtime's [Domain.recommended_domain_count] — what [create]
    uses when [domains] is omitted. *)

val shutdown : t -> unit
(** Joins the workers. Idempotent; operations on a shut-down pool
    raise [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, applies [f], and shuts the pool down
    whether [f] returns or raises. *)

val parallel_for :
  t -> ?chunk_size:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi body] runs [body i] for every [lo <= i <=
    hi] (inclusive, like [for]), exactly once each, spread across the
    pool in contiguous chunks. An empty range ([hi < lo]) is a no-op.
    Chunks run concurrently: bodies must only touch disjoint state
    (distinct array slots, atomics, or guarded structures). *)

val map_reduce :
  t ->
  ?chunk_size:int ->
  lo:int ->
  hi:int ->
  map:(int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  'a ->
  'a
(** [map_reduce t ~lo ~hi ~map ~reduce init] is the left-to-right
    deterministic reduction of [map lo … map hi]: equal to
    [fold_left reduce init] over the mapped range whenever [reduce]
    is associative — and, for a fixed [chunk_size], bit-identical
    across pool sizes even when it is not (the last argument is
    positional, like a fold's accumulator). Returns [init] on an
    empty range. *)

val map_array : t -> ?chunk_size:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. [f] is applied exactly once
    per element. *)

val map_list : t -> ?chunk_size:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map] (via {!map_array}). *)

val normalize_jobs : ?host:int -> int -> int
(** [normalize_jobs requested] is [max 1 (min requested host)] — the
    single normalization point for every user-supplied domain count
    ([PAR_JOBS], the CLIs' [--jobs], the fleet scheduler's
    [--domains]). Zero and negative requests clamp to one domain,
    oversized requests cap at the host's parallelism. [?host] defaults
    to {!recommended} (values below 1 are ignored); pass it explicitly
    only to make the clamp reproducible in tests. *)

val env_jobs : ?default:int -> unit -> int
(** The [PAR_JOBS] environment variable as a domain count, or
    [default] (itself defaulting to 1) when unset or unparsable —
    either way passed through {!normalize_jobs}. Lets `make check`
    re-run the suite with [PAR_JOBS=4]. *)
