(* Fixed-size domain pool. Workers are spawned once and reused: each
   parallel operation enlists every worker plus the caller, and the
   members pull contiguous index chunks off a shared counter until the
   operation is drained.

   The caller always participates, so an operation completes even when
   every worker is busy (or when the pool was created with [domains =
   1] and there are no workers at all). That also makes nested use
   safe: a chunk body that starts another operation on the same pool
   drives that inner operation itself; enlisted workers that arrive
   late find the counter exhausted and leave. *)

type t = {
  size : int;  (* workers + the calling domain *)
  tasks : (unit -> unit) Queue.t;  (* guarded_by: mutex *)
  mutex : Mutex.t;
  work : Condition.t;
  mutable closed : bool;  (* guarded_by: mutex *)
  mutable workers : unit Domain.t list;  (* guarded_by: mutex *)
}

let recommended () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.tasks && not t.closed do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.tasks then Mutex.unlock t.mutex (* closed: retire *)
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.mutex;
    (* Tasks never raise: chunk bodies capture exceptions per chunk
       (see [run_chunks]), so a worker domain cannot die early. *)
    task ();
    worker_loop t
  end

let create ?domains () =
  let size =
    match domains with
    | None -> recommended ()
    | Some d ->
      if d < 1 then invalid_arg "Par.Pool.create: domains must be >= 1";
      d
  in
  let t =
    {
      size;
      tasks = Queue.create ();
      mutex = Mutex.create ();
      work = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  (* lint: allow C002 t is not shared yet: workers spawn from this
     write, so no other domain can observe it *)
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.closed <- true;
  t.workers <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let ensure_open t =
  Mutex.lock t.mutex;
  let closed = t.closed in
  Mutex.unlock t.mutex;
  if closed then invalid_arg "Par.Pool: pool is shut down"

(* Pushes one participant task per worker. Workers that are busy pick
   it up when they free; the operation does not wait for them. *)
let enlist_workers t task =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Par.Pool: pool is shut down"
  end;
  List.iter (fun _ -> Queue.push task t.tasks) t.workers;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex

(* Runs [f 0 … f (chunks - 1)], each exactly once, across the caller
   and any workers that join in. Blocks until every chunk completed,
   then re-raises the exception of the lowest failing chunk (the one a
   sequential left-to-right run would have hit first). *)
let run_chunks t ~chunks f =
  if chunks > 0 then begin
    if t.size = 1 || chunks = 1 then
      for c = 0 to chunks - 1 do
        f c
      done
    else begin
      let next = Atomic.make 0 in
      let remaining = ref chunks in
      let op_mutex = Mutex.create () in
      let op_done = Condition.create () in
      let first_error = ref None in
      let participant () =
        let continue = ref true in
        while !continue do
          let c = Atomic.fetch_and_add next 1 in
          if c >= chunks then continue := false
          else begin
            (match f c with
            | () -> ()
            | exception e ->
              Mutex.lock op_mutex;
              (match !first_error with
              | Some (j, _) when j <= c -> ()
              | Some _ | None -> first_error := Some (c, e));
              Mutex.unlock op_mutex);
            Mutex.lock op_mutex;
            decr remaining;
            if !remaining = 0 then Condition.broadcast op_done;
            Mutex.unlock op_mutex
          end
        done
      in
      enlist_workers t participant;
      participant ();
      Mutex.lock op_mutex;
      while !remaining > 0 do
        Condition.wait op_done op_mutex
      done;
      Mutex.unlock op_mutex;
      match !first_error with Some (_, e) -> raise e | None -> ()
    end
  end

(* The chunk partition must depend only on the range length — never on
   the pool size — so a fixed [chunk_size] (or none) gives the same
   reduction tree at every domain count. At most 64 chunks by default:
   enough slack for load balancing, cheap enough per chunk. *)
let resolve_chunk_size ~n = function
  | None -> max 1 ((n + 63) / 64)
  | Some c ->
    if c < 1 then invalid_arg "Par.Pool: chunk_size must be >= 1";
    c

let parallel_for t ?chunk_size ~lo ~hi body =
  ensure_open t;
  let n = hi - lo + 1 in
  if n > 0 then begin
    let size = resolve_chunk_size ~n chunk_size in
    let chunks = (n + size - 1) / size in
    run_chunks t ~chunks (fun c ->
        let first = lo + (c * size) in
        let last = min hi (first + size - 1) in
        for i = first to last do
          body i
        done)
  end

let map_reduce t ?chunk_size ~lo ~hi ~map ~reduce init =
  ensure_open t;
  let n = hi - lo + 1 in
  if n <= 0 then init
  else begin
    let size = resolve_chunk_size ~n chunk_size in
    let chunks = (n + size - 1) / size in
    let results = Array.make chunks None in
    run_chunks t ~chunks (fun c ->
        let first = lo + (c * size) in
        let last = min hi (first + size - 1) in
        let acc = ref (map first) in
        for i = first + 1 to last do
          acc := reduce !acc (map i)
        done;
        results.(c) <- Some !acc);
    Array.fold_left
      (fun acc r ->
        match r with
        | Some v -> reduce acc v
        | None -> assert false (* run_chunks raised if any chunk failed *))
      init results
  end

let map_array t ?chunk_size f a =
  ensure_open t;
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* Slot 0 is computed by the caller to seed the result array; the
       rest fill their own slots in parallel. [f] runs once per
       element either way. *)
    let out = Array.make n (f a.(0)) in
    parallel_for t ?chunk_size ~lo:1 ~hi:(n - 1) (fun i -> out.(i) <- f a.(i));
    out
  end

let map_list t ?chunk_size f l =
  Array.to_list (map_array t ?chunk_size f (Array.of_list l))

(* The single normalization point for every user-supplied domain
   count (PAR_JOBS, --jobs flags, fleet --domains): zero and negative
   requests mean "at least do the work" (one domain), oversized
   requests are capped at the host's recommendation — more domains
   than cores only adds scheduling noise, and the deterministic chunk
   plans make the count a performance knob, never a results knob. *)
let normalize_jobs ?host requested =
  let host =
    match host with Some h when h >= 1 -> h | Some _ | None -> recommended ()
  in
  max 1 (min requested host)

let env_jobs ?(default = 1) () =
  match Sys.getenv_opt "PAR_JOBS" with
  | None -> normalize_jobs default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> normalize_jobs n
    | None -> normalize_jobs default)
